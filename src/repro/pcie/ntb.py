"""Non-Transparent Bridge model.

An NTB appears as a regular device with a BAR, but reads and writes to
that BAR are *forwarded* to the other side, translating addresses via a
look-up table (paper Sec. III, Fig. 5).  We model the Dolphin-style
adapter: the BAR aperture is divided into windows, each window mapping a
contiguous range of some remote host's physical address space.

The adapter card itself is a PCIe switch chip — traversing it costs the
usual 100-150 ns — and the LUT lookup adds a small translation delay,
accounted per crossing by the fabric.
"""

from __future__ import annotations

import dataclasses

from ..memory import RangeAllocator
from ..sanitizer.hooks import NULL_SANITIZER
from ..sim import Simulator
from .device import Bar, PCIeFunction
from .topology import Host


class NtbError(Exception):
    pass


class NtbLinkDown(NtbError):
    """Raised at resolve time when a transaction would traverse a
    downed NTB adapter link (fault injection).  The fabric converts it
    into the hardware behaviour: posted writes vanish, non-posted reads
    end in a completion timeout."""

    def __init__(self, point: str) -> None:
        super().__init__(f"NTB link down at {point}")
        self.point = point


@dataclasses.dataclass(frozen=True, slots=True)
class NtbWindow:
    """One LUT entry: BAR offset range -> (remote host, remote base)."""

    bar_offset: int
    size: int
    remote_host: Host
    remote_base: int
    label: str = ""

    def contains(self, offset: int, length: int = 1) -> bool:
        return (self.bar_offset <= offset
                and offset + length <= self.bar_offset + self.size)


class NtbFunction(PCIeFunction):
    """NTB device function with a windowed aperture BAR."""

    BAR_INDEX = 0

    def __init__(self, sim: Simulator, name: str, aperture: int) -> None:
        super().__init__(sim, name)
        self.add_bar(self.BAR_INDEX, aperture)
        self._windows: dict[int, NtbWindow] = {}  # keyed by bar_offset
        self._lut_alloc: RangeAllocator | None = None
        self.aperture = aperture
        #: cable state; toggled by fault injection (``link:<host>``)
        self.link_up = True
        self.link_transitions = 0
        #: bumped on every map/unmap; route caches validate against it
        self.lut_version = 0
        #: accounting: successful LUT translations and bytes forwarded
        self.translations = 0
        self.bytes_forwarded = 0
        #: ShareSan hook (docs/sanitizer.md); NULL object when off.
        self.sanitizer = NULL_SANITIZER

    def on_installed(self) -> None:
        self._lut_alloc = RangeAllocator(0, self.aperture,
                                         name=f"{self.name}.lut")

    # -- window management ------------------------------------------------

    def map_window(self, remote_host: Host, remote_base: int, size: int,
                   label: str = "") -> int:
        """Create a window; returns the *local physical address* through
        which the remote range is reachable on this side."""
        if self._lut_alloc is None:
            raise NtbError(f"{self.name} is not installed")
        if remote_host is self.host:
            raise NtbError(f"{self.name}: window to own host is pointless")
        offset = self._lut_alloc.alloc(size, alignment=0x1000)
        self._windows[offset] = NtbWindow(offset, size, remote_host,
                                          remote_base, label)
        self.lut_version += 1
        bar = self.bars[self.BAR_INDEX]
        assert bar.base is not None
        return bar.base + offset

    def unmap_window(self, local_addr: int) -> None:
        bar = self.bars[self.BAR_INDEX]
        assert bar.base is not None and self._lut_alloc is not None
        offset = local_addr - bar.base
        if offset not in self._windows:
            raise NtbError(f"{self.name}: no window at {local_addr:#x}")
        del self._windows[offset]
        self._lut_alloc.free(offset)
        self.lut_version += 1

    def window_count(self) -> int:
        return len(self._windows)

    # -- link state (fault injection) ---------------------------------------

    def set_link_state(self, up: bool) -> None:
        """Sever or restore the adapter's cable.  While down, every
        translation through this NTB fails with :class:`NtbLinkDown`;
        LUT windows survive the outage (the paper's adapters retrain
        without reprogramming)."""
        if up != self.link_up:
            self.link_up = up
            self.link_transitions += 1

    # -- translation (used by the fabric during resolution) -----------------

    def translate(self, bar: Bar, addr: int, length: int) -> tuple[Host, int]:
        """Translate a local BAR hit into (remote host, remote address)."""
        if not self.link_up:
            raise NtbLinkDown(self.name)
        offset = bar.offset_of(addr)
        window = self._find_window(offset, length)
        if window is None:
            raise NtbError(
                f"{self.name}: access at BAR offset {offset:#x} (+{length}) "
                f"hits no LUT window")
        self.translations += 1
        self.bytes_forwarded += length
        san = self.sanitizer
        if san.enabled:
            san.on_ntb_translate(self, bar, addr, length)
        return (window.remote_host,
                window.remote_base + (offset - window.bar_offset))

    def _find_window(self, offset: int, length: int) -> NtbWindow | None:
        # Windows are page-aligned and sparse; linear scan over the dict
        # is fine at realistic window counts (tens), but keep a sorted
        # fallback simple: direct containment test per window.
        for window in self._windows.values():
            if window.contains(offset, length):
                return window
        return None

    # NTB BARs are never accessed as plain MMIO registers in this model —
    # every access is translated and forwarded, so reaching the handlers
    # indicates a fabric bug.
    def mmio_read(self, bar: Bar, offset: int, length: int) -> bytes:
        raise NtbError(f"{self.name}: untranslated read should not happen")

    def mmio_write(self, bar: Bar, offset: int, data: bytes) -> None:
        raise NtbError(f"{self.name}: untranslated write should not happen")
