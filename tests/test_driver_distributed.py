"""Integration tests for the distributed manager/client driver —
the paper's core contribution."""

import dataclasses

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.driver import (BlockRequest, DistributedNvmeClient, NvmeManager,
                          ClientError)
from repro.driver import metadata as meta
from repro.scenarios.testbed import PcieTestbed
from repro.smartio import SmartIoError


def no_sharing_config():
    """The paper's baseline: every client gets a private queue pair."""
    cfg = SimulationConfig()
    return dataclasses.replace(
        cfg, sharing=dataclasses.replace(cfg.sharing, enabled=False))


def make_cluster(n_hosts=2, seed=55, config=None):
    bed = PcieTestbed(n_hosts=n_hosts, with_nvme=True, seed=seed,
                      config=config)
    manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                          bed.nvme_device_id, bed.config)
    boot = bed.sim.process(manager.start())
    bed.sim.run(until=boot)
    return bed, manager


def start_client(bed, host_index, **kwargs):
    client = DistributedNvmeClient(bed.sim, bed.smartio,
                                   bed.node(host_index),
                                   bed.nvme_device_id, bed.config,
                                   **kwargs)
    boot = bed.sim.process(client.start())
    bed.sim.run(until=boot)
    return client


class TestManager:
    def test_start_publishes_metadata(self):
        bed, manager = make_cluster()
        node_id, seg_id = bed.smartio.device_metadata(bed.nvme_device_id)
        assert node_id == bed.node(0).node_id
        seg = bed.node(0).local_segment(seg_id)
        header = meta.unpack_header(seg.read(0, meta.HEADER_SIZE))
        assert header["lba_bytes"] == 512
        assert header["capacity_lbas"] > 0
        assert header["manager_node_id"] == bed.node(0).node_id

    def test_manager_downgrades_exclusive_lock(self):
        bed, manager = make_cluster()
        # After start, other hosts can acquire the device.
        ref = bed.smartio.acquire(bed.nvme_device_id, bed.node(1))
        assert ref is not None

    def test_controller_enabled(self):
        bed, manager = make_cluster()
        assert bed.nvme.regs.ready


class TestClientBootstrap:
    def test_client_gets_queue_pair(self):
        bed, manager = make_cluster()
        client = start_client(bed, 1)
        assert client.qid == 1
        assert bed.nvme.io_queue_count == 1
        assert manager.queues_in_use == 1

    def test_sq_placed_device_side_cq_client_side(self):
        """The Fig. 8 default: SQ in the device host, CQ client-local."""
        bed, manager = make_cluster()
        client = start_client(bed, 1)
        assert client._sq_seg.host is bed.hosts[0]
        assert client._cq_seg.host is bed.hosts[1]

    def test_placement_ablation(self):
        bed, manager = make_cluster()
        client = start_client(bed, 1, sq_placement="client",
                              slot_index=7)
        assert client._sq_seg.host is bed.hosts[1]

    def test_shutdown_returns_queue(self):
        bed, manager = make_cluster()
        client = start_client(bed, 1)
        done = bed.sim.process(client.shutdown())
        bed.sim.run(until=done)
        assert manager.queues_in_use == 0
        assert bed.nvme.io_queue_count == 0

    def test_client_on_device_host(self):
        """'Ours local': client runs in the same host as the device."""
        bed, manager = make_cluster()
        client = start_client(bed, 0)
        assert client._sq_seg.host is bed.hosts[0]
        assert client._cq_seg.host is bed.hosts[0]

    def test_invalid_params_rejected(self):
        bed, manager = make_cluster()
        with pytest.raises(ClientError):
            DistributedNvmeClient(bed.sim, bed.smartio, bed.node(1),
                                  bed.nvme_device_id, bed.config,
                                  sq_placement="bogus")


class TestDataPath:
    def test_remote_write_read_roundtrip(self):
        bed, manager = make_cluster()
        client = start_client(bed, 1)
        payload = bytes((i * 31) % 256 for i in range(4096))

        def flow(sim):
            req = yield from client.io(BlockRequest("write", lba=128,
                                                    data=payload))
            assert req.ok, hex(req.status)
            req = yield from client.io(BlockRequest("read", lba=128,
                                                    nblocks=8))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok
        assert req.result == payload
        # Data really reached the device's medium.
        assert bed.nvme.namespaces[1].read_blocks(128, 8) == payload

    def test_flush(self):
        bed, manager = make_cluster()
        client = start_client(bed, 1)

        def flow(sim):
            req = yield from client.io(BlockRequest("flush"))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok

    def test_cross_host_visibility(self):
        """Host 1 writes a block; host 0 (device host) reads it back
        through its own client — multi-host shared-disk semantics."""
        bed, manager = make_cluster(n_hosts=3)
        writer = start_client(bed, 1)
        reader = start_client(bed, 2)
        payload = b"\xabshared-data" * 40 + bytes(4096 - 12 * 40)

        def flow(sim):
            req = yield from writer.io(BlockRequest("write", lba=0,
                                                    data=payload))
            assert req.ok
            req = yield from reader.io(BlockRequest("read", lba=0,
                                                    nblocks=8))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok
        assert req.result == payload

    def test_remote_latency_band(self):
        """Remote 4 KiB QD1 reads: local-ours + ~1 us of NTB distance;
        still far below NVMe-oF territory."""
        bed, manager = make_cluster()
        client = start_client(bed, 1)

        def flow(sim):
            lat = []
            for i in range(200):
                req = yield from client.io(BlockRequest("read", lba=i * 8,
                                                        nblocks=8))
                assert req.ok
                lat.append(req.latency_ns)
            return np.array(lat)

        lat = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert 11_000 < lat.min() < 16_500
        assert lat.max() < 20_000

    def test_concurrent_clients_operate_independently(self):
        bed, manager = make_cluster(n_hosts=4)
        clients = [start_client(bed, i) for i in (1, 2, 3)]
        assert sorted(c.qid for c in clients) == [1, 2, 3]

        def flow(sim, client, base):
            for i in range(20):
                req = yield from client.io(BlockRequest(
                    "write", lba=base + i * 8,
                    data=bytes([client.qid]) * 4096))
                assert req.ok

        procs = [bed.sim.process(flow(bed.sim, c, 10_000 * (k + 1)))
                 for k, c in enumerate(clients)]
        done = bed.sim.all_of(procs)
        bed.sim.run(until=done)
        ns = bed.nvme.namespaces[1]
        for k, c in enumerate(clients):
            base = 10_000 * (k + 1)
            assert ns.read_blocks(base, 8) == bytes([c.qid]) * 4096

    def test_queue_depth_pipelining(self):
        bed, manager = make_cluster()
        client = start_client(bed, 1, queue_depth=16)

        def flow(sim):
            start = sim.now
            events = [client.submit(BlockRequest("read", lba=i * 8,
                                                 nblocks=8))
                      for i in range(32)]
            yield sim.all_of(events)
            return sim.now - start

        elapsed = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert client.completed == 32
        # 32 sequential remote reads ~ 430 us; pipelined across 5 media
        # channels must be far less.
        assert elapsed < 200_000

    def test_iommu_data_path(self):
        bed, manager = make_cluster()
        client = start_client(bed, 1, data_path="iommu")
        payload = bytes(range(256)) * 16

        def flow(sim):
            req = yield from client.io(BlockRequest("write", lba=8,
                                                    data=payload))
            assert req.ok
            req = yield from client.io(BlockRequest("read", lba=8,
                                                    nblocks=8))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok and req.result == payload

    def test_remote_cq_placement_works_but_slower(self):
        """CQ forced device-side: every poll is a non-posted NTB read."""
        bed, manager = make_cluster()
        fast = start_client(bed, 1, slot_index=3)

        def flow(sim, client, n=40):
            lat = []
            for i in range(n):
                req = yield from client.io(BlockRequest("read", lba=i * 8,
                                                        nblocks=8))
                assert req.ok
                lat.append(req.latency_ns)
            return np.median(np.array(lat))

        fast_med = bed.sim.run(until=bed.sim.process(flow(bed.sim, fast)))

        bed2, manager2 = make_cluster(seed=56)
        slow = start_client(bed2, 1, cq_placement="device", slot_index=4)
        slow_med = bed2.sim.run(
            until=bed2.sim.process(flow(bed2.sim, slow)))
        assert slow_med > fast_med + 500


class TestMultiHostScaling:
    def test_31_clients_supported(self):
        """The paper: P4800X supports 32 QPs, so 31 hosts can share it.

        QP sharing is disabled here to pin the paper's private-only
        baseline; the default policy is covered by test_qp_sharing.py.
        """
        bed, manager = make_cluster(n_hosts=32,
                                    config=no_sharing_config())
        clients = []
        for i in range(1, 32):
            clients.append(start_client(bed, i))
        assert bed.nvme.io_queue_count == 31
        assert sorted(c.qid for c in clients) == list(range(1, 32))

    def test_32nd_client_refused(self):
        """Without QP sharing the 32nd host hits the hard QP limit."""
        bed, manager = make_cluster(n_hosts=33,
                                    config=no_sharing_config())
        for i in range(1, 32):
            start_client(bed, i)
        overflow = DistributedNvmeClient(bed.sim, bed.smartio,
                                         bed.node(32),
                                         bed.nvme_device_id, bed.config)
        boot = bed.sim.process(overflow.start())
        with pytest.raises(ClientError):
            bed.sim.run(until=boot)
