"""Noisy-neighbour isolation regression (docs/qos.md).

One aggressor floods its window of a single shared QP while three
bystanders offer a modest open-loop rate.  The claims under test:

* ``wfq`` + admission throttling keep every bystander 100 %
  SLO-compliant and fire burn-rate alerts for the aggressor *only*,
  with the throttle clamping the aggressor alone;
* ``fifo`` demonstrably fails the same test — every bystander breaches
  the SLO and alerts — so the isolation claim is non-vacuous;
* the bystanders' tail latency quantifies it: within 1.5x their solo
  (undisturbed) p99 under wfq+throttle, beyond 5x under fifo;
* the whole story replays bit-identically under ShareSan.

Runs are module-scoped fixtures: four scenario runs shared by all the
assertions below.
"""

import pytest

from repro.qos import run_qos

#: shorter than the ``repro qos`` default — the gates already hold here
#: and tier-1 time matters
HORIZON_NS = 4_000_000
SEED = 7


@pytest.fixture(scope="module")
def solo():
    return run_qos("off", aggressor_active=False, seed=SEED,
                   horizon_ns=HORIZON_NS)


@pytest.fixture(scope="module")
def fifo():
    return run_qos("fifo", seed=SEED, horizon_ns=HORIZON_NS)


@pytest.fixture(scope="module")
def wfq():
    return run_qos("wfq", seed=SEED, horizon_ns=HORIZON_NS)


@pytest.fixture(scope="module")
def wfq_throttle():
    return run_qos("wfq", throttle=True, seed=SEED,
                   horizon_ns=HORIZON_NS)


class TestWfqThrottleIsolates:
    def test_bystanders_fully_compliant(self, wfq_throttle):
        for tenant in wfq_throttle.bystanders:
            info = wfq_throttle.report["tenants"][tenant]
            assert info["met"], f"{tenant} missed the SLO"
            assert info["compliance"] == 1.0, (
                f"{tenant} not 100% compliant: {info['compliance']}")

    def test_only_aggressor_alerts(self, wfq, wfq_throttle):
        for run in (wfq, wfq_throttle):
            assert run.tenant_alerts(run.aggressor), \
                "aggressor fired no burn-rate alert"
            for tenant in run.bystanders:
                assert not run.tenant_alerts(tenant), \
                    f"bystander {tenant} alerted under {run.policy}"

    def test_throttle_clamps_only_the_aggressor(self, wfq_throttle):
        report = wfq_throttle.throttle_report
        assert report["enabled"]
        assert report["throttles_applied"] >= 1
        assert report["clamped"] == [wfq_throttle.aggressor]

    def test_aggressor_throughput_actually_cut(self, wfq,
                                               wfq_throttle):
        """The clamp is real: the throttled aggressor lands far fewer
        I/Os per second than the unthrottled wfq run."""
        free = wfq.results[0]
        clamped = wfq_throttle.results[0]
        assert free is not None and clamped is not None
        assert clamped.achieved_iops < 0.7 * free.achieved_iops


class TestFifoFailsToIsolate:
    """The inverse assertions — without them the wfq test would pass
    vacuously on a workload too gentle to hurt anyone."""

    def test_every_bystander_breaches_and_alerts(self, fifo):
        for tenant in fifo.bystanders:
            info = fifo.report["tenants"][tenant]
            assert not info["met"], (
                f"{tenant} met the SLO under fifo — the aggressor "
                f"isn't aggressive enough to make the test meaningful")
            assert fifo.tenant_alerts(tenant), \
                f"bystander {tenant} fired no alert under fifo"


class TestIsolationRatios:
    def test_tail_latency_gates(self, solo, fifo, wfq_throttle):
        solo_p99 = solo.bystander_p99_ns()
        assert solo_p99 > 0
        assert wfq_throttle.bystander_p99_ns() <= 1.5 * solo_p99, (
            f"wfq+throttle bystander p99 "
            f"{wfq_throttle.bystander_p99_ns():.0f} ns exceeds 1.5x "
            f"solo ({solo_p99:.0f} ns)")
        assert fifo.bystander_p99_ns() > 5 * solo_p99, (
            f"fifo bystander p99 {fifo.bystander_p99_ns():.0f} ns is "
            f"within 5x solo ({solo_p99:.0f} ns) — non-vacuity lost")

    def test_all_traffic_served(self, fifo, wfq, wfq_throttle):
        """Isolation is not starvation: every issued I/O completes,
        error-free, under every policy."""
        for run in (fifo, wfq, wfq_throttle):
            for result in run.results:
                assert result is not None
                assert result.completed == result.issued
                assert result.errors == 0


class TestShareSanReplay:
    def test_sanitized_run_bit_identical_and_clean(self):
        def digest():
            run = run_qos("wfq", throttle=True, seed=SEED,
                          horizon_ns=2_000_000, sanitizer=True)
            return (run.prometheus_text(), run.timeseries_jsonl(),
                    run.slo_report_json())

        first = digest()
        assert first == digest()

    def test_sanitizer_reports_no_findings(self):
        from repro.scenarios import noisy_neighbor
        from repro.workloads import OpenLoopJob, run_open_loop_many

        sc = noisy_neighbor(policy="wfq", seed=SEED, sanitizer=True)
        jobs = [OpenLoopJob(name=f"t{i}", rate_iops=30_000.0,
                            total_arrivals=40)
                for i in range(len(sc.clients))]
        run_open_loop_many(list(zip(sc.clients, jobs)))
        assert sc.sanitizer is not None
        assert sc.sanitizer.findings == []
