"""Shared I/O queue pairs: admission policy, slot windows, demux.

Covers the queue-sharing design of docs/queue_sharing.md end to end:

* private-first admission — clients get private QPs until only the
  shared reserve remains, then become tenants of manager-hosted shared
  QPs (least-loaded placement, deterministic tie-break);
* the 32nd client is *admitted* under the default policy (the paper's
  hard 31-host limit becomes a capacity limit);
* a rejected admission (RPC_NO_QUEUES) rolls back any partially
  reserved slot window and is counted in the metrics registry;
* a released window's ring position is handed to the next tenant via
  the doorbell shadow, so window reuse never desynchronises head/tail.
"""

import dataclasses

import pytest

from repro.config import SimulationConfig
from repro.driver import ClientError, DistributedNvmeClient, NvmeManager
from repro.driver import metadata as meta
from repro.scenarios import multihost, scale_out_cluster
from repro.scenarios.testbed import PcieTestbed
from repro.workloads import FioJob, run_fio_many


def sharing_config(reserved_qps=1, max_queue_pairs=None, sq_entries=None,
                   window_entries=None, doorbell_batch_ns=None):
    cfg = SimulationConfig()
    share = dataclasses.replace(cfg.sharing, reserved_qps=reserved_qps)
    if sq_entries is not None:
        share = dataclasses.replace(share, sq_entries=sq_entries)
    if window_entries is not None:
        share = dataclasses.replace(share, window_entries=window_entries)
    if doorbell_batch_ns is not None:
        share = dataclasses.replace(share,
                                    doorbell_batch_ns=doorbell_batch_ns)
    cfg = dataclasses.replace(cfg, sharing=share)
    if max_queue_pairs is not None:
        cfg = dataclasses.replace(
            cfg, nvme=dataclasses.replace(cfg.nvme,
                                          max_queue_pairs=max_queue_pairs))
    return cfg


def make_cluster(n_hosts, config, seed=71):
    bed = PcieTestbed(n_hosts=n_hosts, with_nvme=True, seed=seed,
                      config=config)
    manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                          bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(manager.start()))
    return bed, manager


def start_client(bed, host_index, **kwargs):
    client = DistributedNvmeClient(bed.sim, bed.smartio,
                                   bed.node(host_index),
                                   bed.nvme_device_id, bed.config,
                                   slot_index=host_index - 1,
                                   name=f"host{host_index}-nvme", **kwargs)
    bed.sim.run(until=bed.sim.process(client.start()))
    return client


class TestAdmissionPolicy:
    def test_private_first_then_shared(self):
        """4 IO QPs, 1 reserved: clients 1-3 get private QPs, 4-6
        become tenants of one shared QP."""
        cfg = sharing_config(reserved_qps=1, max_queue_pairs=5)
        bed, manager = make_cluster(7, cfg)
        clients = [start_client(bed, i) for i in range(1, 7)]
        assert [c._shared for c in clients] == [False] * 3 + [True] * 3
        assert len(manager.shared_qps) == 1
        qp = next(iter(manager.shared_qps.values()))
        assert qp.tenant_count == 3
        # Tenants occupy distinct windows with disjoint slot ranges.
        windows = [(c._win_start, c.sq.entries) for c in clients
                   if c._shared]
        assert len({w for w, _ in windows}) == 3
        for start, length in windows:
            assert start + length <= qp.entries

    def test_least_loaded_placement(self):
        """A new tenant lands on the emptiest shared QP with a free
        window; equal load breaks ties toward the lowest qid."""
        cfg = sharing_config(reserved_qps=2, max_queue_pairs=3,
                             sq_entries=48, window_entries=16)
        bed, manager = make_cluster(8, cfg)
        # Fill QP A's 3 windows; the 4th tenant spawns QP B.
        t = [start_client(bed, i, sharing="force") for i in range(1, 5)]
        qid_a, qid_b = sorted(manager.shared_qps)
        assert [c.qid for c in t] == [qid_a, qid_a, qid_a, qid_b]
        # A tenant leaves A: now A has 2 tenants, B has 1.
        bed.sim.run(until=bed.sim.process(t[0].shutdown()))
        # Least-loaded: the next tenant goes to B despite A's free
        # window and lower qid...
        t5 = start_client(bed, 5, sharing="force")
        assert t5.qid == qid_b
        # ...and with the load tied at 2/2, the tie-break picks A.
        t6 = start_client(bed, 6, sharing="force")
        assert t6.qid == qid_a

    def test_32nd_client_admitted_by_default(self):
        """The acceptance criterion: the default policy admits the
        32nd client instead of answering RPC_NO_QUEUES."""
        scn = multihost(32, seed=17, queue_depth=4)
        assert len(scn.clients) == 32
        assert scn.manager.admission_rejections == 0
        shared = [c for c in scn.clients if c._shared]
        assert shared, "the overflow client must be a shared tenant"
        job = FioJob(rw="randread", bs=4096, iodepth=4, total_ios=40)
        results = run_fio_many([(c, job) for c in scn.clients])
        assert all(r.ios == 40 and r.errors == 0 for r in results)

    def test_sharing_never_refuses_beyond_reserve(self):
        """A sharing=never client hitting the reserve is refused."""
        cfg = sharing_config(reserved_qps=1, max_queue_pairs=3)
        bed, manager = make_cluster(4, cfg)
        start_client(bed, 1)   # takes the one non-reserved QP
        with pytest.raises(ClientError, match="refused"):
            start_client(bed, 2, sharing="never")

    def test_scale_out_64_clients(self):
        """64 clients on a 31-QP controller, every I/O completes."""
        scn = scale_out_cluster(64, seed=29, queue_depth=4)
        assert len(scn.clients) == 64
        assert scn.manager.admission_rejections == 0
        assert scn.testbed.nvme.io_queue_count <= 31
        job = FioJob(rw="randread", bs=4096, iodepth=4, total_ios=25)
        results = run_fio_many([(c, job) for c in scn.clients])
        assert all(r.ios == 25 and r.errors == 0 for r in results)
        assert sum(c.timeouts for c in scn.clients) == 0
        assert scn.manager.cqes_orphaned == 0


class TestRejectionRollback:
    """Satellite regression: RPC_NO_QUEUES must leave no partially
    reserved slot window behind and must be counted in telemetry."""

    def _raw_rpc(self, bed, node_index, slot, **fields):
        """Drive the mailbox slot protocol by hand (lets the test send
        requests a well-behaved client never would)."""
        node = bed.node(node_index)
        meta_node, meta_seg = bed.smartio.device_metadata(
            bed.nvme_device_id)
        conn = node.connect_segment(meta_node, meta_seg)
        offset = meta.slot_offset(slot)

        def rpc():
            yield from conn.write_wait(
                offset, meta.pack_slot(meta.SLOT_REQUEST, **fields))
            while True:
                yield bed.sim.timeout(1_000)
                raw = yield from conn.read(offset, meta.SLOT_SIZE)
                resp = meta.unpack_slot(raw)
                if resp["status"] == meta.SLOT_RESPONSE:
                    return resp

        return bed.sim.run(until=bed.sim.process(rpc()))

    def test_unreachable_mailbox_rolls_back_window(self):
        from repro.telemetry.hub import Telemetry

        cfg = sharing_config(reserved_qps=1, max_queue_pairs=5)
        bed, manager = make_cluster(4, cfg)
        tele = Telemetry(bed.sim).attach(managers=[manager])
        resp = self._raw_rpc(
            bed, 1, 0, op=meta.OP_CREATE_QP, entries=64,
            flags=meta.FLAG_SHARED,
            share_node=bed.node(1).node_id, share_seg=0xDEAD)  # no such
        assert resp["rpc_status"] == meta.RPC_NO_QUEUES
        assert manager.admission_rejections == 1
        # The window reserved before the connect attempt was rolled
        # back; the shared QP (if one was spun up) is fully free.
        for qp in manager.shared_qps.values():
            assert qp.free_windows == qp.nwindows
        assert not manager._slot_share
        text = tele.prometheus_text()
        assert "repro_manager_admission_rejections_total 1" in text
        # A later well-formed tenant is unaffected by the rollback.
        client = start_client(bed, 2, sharing="force")
        assert client._shared

    def test_capacity_exhausted_counts_rejections(self):
        """All windows taken and no reserve left: RPC_NO_QUEUES."""
        cfg = sharing_config(reserved_qps=1, max_queue_pairs=5,
                             sq_entries=32, window_entries=16)
        bed, manager = make_cluster(5, cfg)
        start_client(bed, 1, sharing="force")
        start_client(bed, 2, sharing="force")   # both windows taken
        with pytest.raises(ClientError, match="refused"):
            start_client(bed, 3, sharing="force")
        assert manager.admission_rejections == 1
        assert len(manager.shared_qps) == 1


class TestWindowHandoff:
    def _tenant_cluster(self):
        cfg = sharing_config(reserved_qps=1, max_queue_pairs=3)
        bed, manager = make_cluster(5, cfg)
        first = start_client(bed, 1, sharing="force")
        return bed, manager, first

    def _run_ios(self, bed, client, n):
        job = FioJob(rw="randread", bs=4096, iodepth=4, total_ios=n)
        [result] = run_fio_many([(client, job)])
        assert result.ios == n and result.errors == 0

    def test_shadow_handoff_on_reuse(self):
        """A departing tenant's window is reused by a successor whose
        ring starts at the shadowed tail — mid-window, not zero."""
        bed, manager, first = self._tenant_cluster()
        win_len = first.sq.entries
        self._run_ios(bed, first, 10)            # 10 % win_len != 0
        expect_tail = first.sq.tail
        assert expect_tail == 10 % win_len
        widx = first._tenant
        bed.sim.run(until=bed.sim.process(first.shutdown()))
        qp = next(iter(manager.shared_qps.values()))
        assert qp.tenants[widx] is None
        assert qp.win_next_tail[widx] == expect_tail

        second = start_client(bed, 2, sharing="force")
        assert second._tenant == widx            # same window reused
        assert second.sq.tail == expect_tail == second.sq.head
        self._run_ios(bed, second, 50)           # wraps the window

    def test_delete_frees_only_the_window(self):
        bed, manager, first = self._tenant_cluster()
        second = start_client(bed, 2, sharing="force")
        self._run_ios(bed, first, 5)
        bed.sim.run(until=bed.sim.process(second.shutdown()))
        assert len(manager.shared_qps) == 1      # QP survives
        assert manager.queues_in_use == 1
        self._run_ios(bed, first, 5)             # co-tenant unaffected

    def test_doorbell_batching_completes(self):
        cfg = sharing_config(reserved_qps=1, max_queue_pairs=3,
                             doorbell_batch_ns=2_000)
        bed, manager = make_cluster(4, cfg)
        a = start_client(bed, 1, sharing="force")
        b = start_client(bed, 2, sharing="force")
        job = FioJob(rw="randread", bs=4096, iodepth=8, total_ios=100)
        results = run_fio_many([(a, job), (b, job)])
        assert all(r.ios == 100 and r.errors == 0 for r in results)
        assert bed.nvme.bad_doorbells == 0
