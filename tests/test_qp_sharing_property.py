"""Property-based invariants for co-tenants of one shared SQ.

A seeded stateful loop drives N tenants on a single shared queue pair
through random interleavings — bursts of reads/writes, idle gaps, and
tenant churn (a tenant leaves mid-run and a successor is admitted into
its window).  At every checkpoint and at the end the invariants of
docs/queue_sharing.md must hold:

* **CIDs never collide** — the in-flight CID sets of co-tenants are
  pairwise disjoint, and every in-flight CID carries its issuer's
  tenant index in the high bits;
* **completions demux to their issuer** — every submitted request
  completes on the client that issued it, with a CQE whose CID decodes
  to that client's tenant index; the manager forwards no CQE to the
  wrong mailbox (zero stale completions) and orphans none while its
  issuer lives;
* **slot windows never overlap** — the live tenants' [win_start,
  win_start + win_len) ranges are pairwise disjoint and inside the
  shared ring, even as windows are released and reused.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.driver import (BlockRequest, DistributedNvmeClient,
                          NvmeManager, STATUS_HOST_SHUTDOWN)
from repro.driver import metadata as meta
from repro.scenarios.testbed import PcieTestbed

N_TENANTS = 4
STEPS = 250


def build_cluster(seed):
    cfg = SimulationConfig()
    cfg = dataclasses.replace(
        cfg,
        nvme=dataclasses.replace(cfg.nvme, max_queue_pairs=3),
        sharing=dataclasses.replace(cfg.sharing, reserved_qps=1,
                                    sq_entries=256, window_entries=16))
    bed = PcieTestbed(n_hosts=1 + N_TENANTS, with_nvme=True, seed=seed,
                      config=cfg)
    manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                          bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(manager.start()))
    return bed, manager


def admit(bed, host_index, slot_index, gen):
    client = DistributedNvmeClient(
        bed.sim, bed.smartio, bed.node(host_index), bed.nvme_device_id,
        bed.config, sharing="force", queue_depth=8,
        slot_index=slot_index, name=f"tenant{gen}-host{host_index}")
    bed.sim.run(until=bed.sim.process(client.start()))
    return client


def check_invariants(manager, live):
    qp = next(iter(manager.shared_qps.values()))
    # CID namespacing: in-flight sets pairwise disjoint, tenant bits
    # always the issuer's.
    seen = {}
    for client in live:
        for cid in client._inflight:
            assert meta.cid_tenant(cid) == client._tenant
            assert cid not in seen, (
                f"CID {cid:#x} in flight on {client.name} "
                f"and {seen[cid].name}")
            seen[cid] = client
    # Slot windows: pairwise disjoint, in-bounds.
    ranges = sorted((c._win_start, c._win_start + c.sq.entries)
                    for c in live)
    for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
        assert a1 <= b0, f"windows overlap: {(a0, a1)} vs {(b0, b1)}"
    if ranges:
        assert ranges[0][0] >= 0 and ranges[-1][1] <= qp.entries
    # Demux hygiene.
    assert sum(c.stale_completions for c in live) == 0


@pytest.mark.parametrize("seed", [101, 202])
def test_random_interleavings_preserve_invariants(seed):
    bed, manager = build_cluster(seed)
    sim = bed.sim
    rng = np.random.default_rng(seed)

    live = [admit(bed, 1 + i, i, gen=0) for i in range(N_TENANTS)]
    generation = 1
    pending = []          # (client, Event) for every submitted request
    churned = set()       # clients that were shut down mid-run

    for step in range(STEPS):
        action = rng.integers(0, 10)
        if action < 6:                      # submit a burst
            client = live[int(rng.integers(0, len(live)))]
            for _ in range(int(rng.integers(1, 4))):
                op = "read" if rng.integers(0, 2) else "write"
                nblocks = int(rng.integers(1, 5))
                lba = int(rng.integers(0, 1 << 20))
                req = BlockRequest(op, lba=lba, nblocks=nblocks,
                                   data=bytes(nblocks * 512)
                                   if op == "write" else None)
                pending.append((client, client.submit(req)))
        elif action < 9:                    # let the cluster run
            sim.run(until=sim.timeout(int(rng.integers(1_000, 80_000))))
        elif len(live) == N_TENANTS:        # tenant churn
            idx = int(rng.integers(0, len(live)))
            victim = live.pop(idx)
            churned.add(victim)
            host_index = bed.hosts.index(victim.node.host)
            sim.run(until=sim.process(victim.shutdown()))
            live.append(admit(bed, host_index, victim.slot_index,
                              gen=generation))
            generation += 1
        if step % 25 == 0:
            check_invariants(manager, live)

    # Drain everything still in flight.
    sim.run(until=sim.timeout(50_000_000))
    check_invariants(manager, live)

    assert pending, "the schedule never submitted anything"
    for client, ev in pending:
        # Exactly-once, on the issuer: the event of every submitted
        # request triggers on the client it was submitted to.  A CQE
        # demuxed to the wrong tenant would count as *stale* there
        # (asserted zero above) and leave its issuer hanging here.
        assert ev.triggered, f"an I/O on {client.name} never completed"
        req = ev.value
        if client in churned:
            # A request caught by its issuer's shutdown surfaces the
            # distinct host-side status — it never vanishes and never
            # completes on another tenant.
            assert req.ok or req.status == STATUS_HOST_SHUTDOWN
        else:
            assert req.ok
    assert all(not c._inflight for c in live)
    # Only tenants that left with I/O still in flight may orphan CQEs.
    if not churned:
        assert manager.cqes_orphaned == 0
