"""Unit tests for NVMe binary structures, queues and PRP handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvme import (CompletionEntry, CompletionQueueState,
                        IdentifyController, IdentifyNamespace, PrpError,
                        QueueError, SubmissionEntry, SubmissionQueueState,
                        build_prps, page_segments)
from repro.nvme.constants import PAGE_SIZE, parse_status, status_field
from repro.nvme.registers import (build_cap, cq_doorbell_offset,
                                  doorbell_index, sq_doorbell_offset)


class TestSubmissionEntry:
    def test_roundtrip(self):
        sqe = SubmissionEntry(opcode=0x02, cid=0x1234, nsid=1,
                              prp1=0x1000, prp2=0x2000,
                              cdw10=0xAABBCCDD, cdw11=0x11, cdw12=7)
        packed = sqe.pack()
        assert len(packed) == 64
        back = SubmissionEntry.unpack(packed)
        assert back == sqe

    def test_slba_nlb_helpers(self):
        sqe = SubmissionEntry(opcode=0x01)
        sqe.slba = 0x1_2345_6789
        sqe.nlb = 7
        assert sqe.cdw10 == 0x2345_6789
        assert sqe.cdw11 == 0x1
        assert sqe.slba == 0x1_2345_6789
        assert sqe.nlb == 7

    def test_nlb_preserves_upper_cdw12(self):
        sqe = SubmissionEntry()
        sqe.cdw12 = 0x8000_0000   # e.g. FUA bit
        sqe.nlb = 3
        assert sqe.cdw12 == 0x8000_0003

    def test_invalid_cid_rejected(self):
        with pytest.raises(ValueError):
            SubmissionEntry(opcode=1, cid=0x10000).pack()

    def test_unpack_wrong_size(self):
        with pytest.raises(ValueError):
            SubmissionEntry.unpack(b"\x00" * 63)

    @given(st.integers(0, 0xFF), st.integers(0, 0xFFFF),
           st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1),
           st.integers(0, 2**32 - 1))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, opcode, cid, prp1, prp2, cdw10):
        sqe = SubmissionEntry(opcode=opcode, cid=cid, prp1=prp1, prp2=prp2,
                              cdw10=cdw10)
        assert SubmissionEntry.unpack(sqe.pack()) == sqe


class TestCompletionEntry:
    def test_roundtrip(self):
        cqe = CompletionEntry(result=0x42, sq_head=10, sq_id=3, cid=77,
                              status=0, phase=1)
        back = CompletionEntry.unpack(cqe.pack())
        assert back == cqe
        assert back.ok

    def test_error_status_roundtrip(self):
        cqe = CompletionEntry(status=0x80, phase=0)   # LBA out of range
        back = CompletionEntry.unpack(cqe.pack())
        assert back.status == 0x80
        assert not back.ok

    def test_sct_encoding(self):
        cqe = CompletionEntry(status=0x01_02, phase=1)   # SCT=1, SC=2
        back = CompletionEntry.unpack(cqe.pack())
        assert back.status == 0x01_02

    def test_status_field_helpers(self):
        packed = status_field(0x01_02, 1)
        status, phase = parse_status(packed)
        assert status == 0x01_02 and phase == 1

    @given(st.integers(0, 2**32 - 1), st.integers(0, 0xFFFF),
           st.integers(0, 0xFFFF), st.integers(0, 1))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, result, sq_head, cid, phase):
        cqe = CompletionEntry(result=result, sq_head=sq_head, cid=cid,
                              phase=phase)
        assert CompletionEntry.unpack(cqe.pack()) == cqe


class TestIdentify:
    def test_controller_roundtrip(self):
        ident = IdentifyController(nn=3)
        data = ident.pack()
        assert len(data) == 4096
        back = IdentifyController.unpack(data)
        assert back.model == ident.model
        assert back.serial == ident.serial
        assert back.nn == 3
        assert back.mdts == ident.mdts

    def test_namespace_roundtrip(self):
        ident = IdentifyNamespace(nsze=1000, ncap=1000, nuse=5, lba_shift=12)
        back = IdentifyNamespace.unpack(ident.pack())
        assert back == ident
        assert back.lba_bytes == 4096


class TestQueueStates:
    def test_sq_full_empty(self):
        sq = SubmissionQueueState(qid=1, base_addr=0x1000, entries=4)
        assert sq.is_empty()
        for _ in range(3):
            sq.advance_tail()
        assert sq.is_full()
        with pytest.raises(QueueError):
            sq.advance_tail()
        sq.advance_head()
        assert not sq.is_full()
        assert sq.occupancy() == 2

    def test_sq_underflow(self):
        sq = SubmissionQueueState(qid=1, base_addr=0, entries=4)
        with pytest.raises(QueueError):
            sq.advance_head()

    def test_sq_slot_addr(self):
        sq = SubmissionQueueState(qid=1, base_addr=0x1000, entries=8)
        assert sq.slot_addr(0) == 0x1000
        assert sq.slot_addr(3) == 0x1000 + 3 * 64
        with pytest.raises(QueueError):
            sq.slot_addr(8)

    def test_min_entries(self):
        with pytest.raises(QueueError):
            SubmissionQueueState(qid=1, base_addr=0, entries=1)
        with pytest.raises(QueueError):
            CompletionQueueState(qid=1, base_addr=0, entries=1)

    def test_cq_phase_flip_on_wrap(self):
        cq = CompletionQueueState(qid=1, base_addr=0x2000, entries=3)
        tags = [cq.produce_slot() for _ in range(7)]
        slots = [s for s, _ in tags]
        phases = [p for _, p in tags]
        assert slots == [0, 1, 2, 0, 1, 2, 0]
        assert phases == [1, 1, 1, 0, 0, 0, 1]

    def test_cq_consumer_phase_tracks_producer(self):
        prod = CompletionQueueState(qid=1, base_addr=0, entries=3)
        cons = CompletionQueueState(qid=1, base_addr=0, entries=3)
        for _ in range(10):
            _slot, phase = prod.produce_slot()
            assert cons.consumer_phase() == phase
            cons.consume()

    def test_cq_slot_addr(self):
        cq = CompletionQueueState(qid=1, base_addr=0x2000, entries=8)
        assert cq.slot_addr(2) == 0x2000 + 2 * 16


class TestPrp:
    def test_page_segments_aligned(self):
        segs = page_segments(0x10000, 4096)
        assert segs == [(0x10000, 4096)]

    def test_page_segments_offset(self):
        segs = page_segments(0x10F00, 4096)
        assert segs == [(0x10F00, 0x100), (0x11000, 4096 - 0x100)]

    def test_page_segments_multi(self):
        segs = page_segments(0x10000, 3 * 4096)
        assert len(segs) == 3
        assert sum(s for _, s in segs) == 3 * 4096

    def test_page_segments_rejects_zero(self):
        with pytest.raises(PrpError):
            page_segments(0, 0)

    def test_build_single_page(self):
        d = build_prps(0x10000, 4096, list_alloc=None)
        assert d.prp1 == 0x10000 and d.prp2 == 0 and not d.list_pages

    def test_build_two_pages(self):
        d = build_prps(0x10000, 8192, list_alloc=None)
        assert d.prp1 == 0x10000 and d.prp2 == 0x11000

    def test_build_list(self):
        allocated = []

        def alloc(n):
            base = 0xA0000 + len(allocated) * 0x1000
            allocated.append(base)
            return base

        d = build_prps(0x10000, 16 * 4096, list_alloc=alloc)
        assert d.prp1 == 0x10000
        assert d.prp2 == 0xA0000
        assert len(d.list_pages) == 1
        addr, blob = d.list_pages[0]
        pointers = [int.from_bytes(blob[i * 8:(i + 1) * 8], "little")
                    for i in range(15)]
        assert pointers == [0x11000 + i * 0x1000 for i in range(15)]

    def test_build_chained_list(self):
        """Transfers needing >512 pointers chain across list pages."""
        allocated = []

        def alloc(n):
            base = 0xB00000 + len(allocated) * 0x1000
            allocated.append(base)
            return base

        npages = 600
        d = build_prps(0x100000, npages * 4096, list_alloc=alloc)
        assert len(d.list_pages) == 2
        _, first_blob = d.list_pages[0]
        chain = int.from_bytes(first_blob[511 * 8: 512 * 8], "little")
        assert chain == allocated[1]


class TestDoorbellLayout:
    def test_offsets(self):
        assert sq_doorbell_offset(0) == 0x1000
        assert cq_doorbell_offset(0) == 0x1004
        assert sq_doorbell_offset(5) == 0x1000 + 40
        assert cq_doorbell_offset(5) == 0x1000 + 44

    def test_index_inverse(self):
        for qid in range(32):
            assert doorbell_index(sq_doorbell_offset(qid)) == (qid, False)
            assert doorbell_index(cq_doorbell_offset(qid)) == (qid, True)

    def test_cap_fields(self):
        cap = build_cap(1024, 4)
        assert cap & 0xFFFF == 1023          # MQES
        assert (cap >> 37) & 1 == 1          # NVM command set
        with pytest.raises(ValueError):
            build_cap(1024, 8)
