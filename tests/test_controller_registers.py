"""Controller register-file details: masking, shutdown, partial reads."""

import pytest

from repro.nvme import MSIX_TABLE_OFFSET
from repro.nvme.constants import (CSTS_SHST_COMPLETE, REG_CC, REG_CSTS,
                                  REG_INTMC, REG_INTMS)
from repro.nvme.registers import RegisterFile

from .nvme_harness import BareMetalDriver, build_single_host


def booted(seed=520):
    sim, cluster, fabric, host, ctrl = build_single_host(seed=seed)
    drv = BareMetalDriver(sim, fabric, host, ctrl)

    def boot(sim):
        yield from drv.enable()

    sim.run(until=sim.process(boot(sim)))
    return sim, fabric, host, ctrl, drv


class TestRegisterFile:
    def test_partial_and_offset_reads(self):
        regs = RegisterFile(1024, 4)
        cap = int.from_bytes(regs.read(0x00, 8), "little")
        # byte-sliced read of the same register agrees
        lo = int.from_bytes(regs.read(0x00, 4), "little")
        hi = int.from_bytes(regs.read(0x04, 4), "little")
        assert (hi << 32) | lo == cap

    def test_reserved_region_reads_zero(self):
        regs = RegisterFile(1024, 4)
        assert regs.read(0x38, 16) == bytes(16)
        assert regs.read(0x100, 4) == bytes(4)

    def test_admin_queue_attribute_decoding(self):
        regs = RegisterFile(1024, 4)
        regs.aqa = ((31 << 16) | 63)
        assert regs.admin_sq_entries == 64
        assert regs.admin_cq_entries == 32


class TestShutdownAndMasking:
    def test_shutdown_notification_sets_shst(self):
        sim, fabric, host, ctrl, drv = booted()

        def flow(sim):
            cc = yield from drv.reg_read(REG_CC)
            drv.reg_write(REG_CC, cc | (0b01 << 14))   # SHN normal
            yield sim.timeout(5_000)
            csts = yield from drv.reg_read(REG_CSTS)
            return csts

        csts = sim.run(until=sim.process(flow(sim)))
        assert csts & CSTS_SHST_COMPLETE

    def test_intms_blocks_msix_and_intmc_unblocks(self):
        sim, fabric, host, ctrl, drv = booted(seed=521)

        def flow(sim):
            mailbox = host.alloc_dma(4096)
            drv.reg_write(MSIX_TABLE_OFFSET + 0, mailbox & 0xFFFF_FFFF)
            drv.reg_write(MSIX_TABLE_OFFSET + 8, 0xBEEF)
            drv.reg_write(MSIX_TABLE_OFFSET + 12, 0)   # unmask entry
            drv.reg_write(REG_INTMS, 1)                # mask vector 0
            yield sim.timeout(3_000)
            yield from drv.identify_controller()        # admin CQ: vec 0
            yield sim.timeout(5_000)
            masked_value = host.memory.read_u32(mailbox)
            drv.reg_write(REG_INTMC, 1)                # unmask
            yield sim.timeout(1_000)
            yield from drv.identify_controller()
            yield sim.timeout(5_000)
            unmasked_value = host.memory.read_u32(mailbox)
            return masked_value, unmasked_value

        masked, unmasked = sim.run(until=sim.process(flow(sim)))
        assert masked == 0          # interrupt suppressed while masked
        assert unmasked == 0xBEEF   # delivered after INTMC

    def test_msix_table_readback(self):
        sim, fabric, host, ctrl, drv = booted(seed=522)

        def flow(sim):
            drv.reg_write(MSIX_TABLE_OFFSET + 16, 0x1234_5678)  # vec 1
            drv.reg_write(MSIX_TABLE_OFFSET + 24, 0x42)
            yield sim.timeout(2_000)
            data = yield from fabric.read(
                host.rc, host, ctrl.bars[0].base + MSIX_TABLE_OFFSET + 16,
                16)
            return data

        data = sim.run(until=sim.process(flow(sim)))
        assert int.from_bytes(data[0:8], "little") == 0x1234_5678
        assert int.from_bytes(data[8:12], "little") == 0x42
        assert int.from_bytes(data[12:16], "little") == 1   # still masked

    def test_doorbell_region_reads_zero(self):
        sim, fabric, host, ctrl, drv = booted(seed=523)

        def flow(sim):
            data = yield from fabric.read(host.rc, host,
                                          ctrl.bars[0].base + 0x1000, 8)
            return data

        assert sim.run(until=sim.process(flow(sim))) == bytes(8)

    def test_disable_while_enabling_aborts(self):
        sim, cluster, fabric, host, ctrl = build_single_host(seed=524)
        drv = BareMetalDriver(sim, fabric, host, ctrl)

        def flow(sim):
            asq = host.alloc_dma(64 * 64)
            acq = host.alloc_dma(64 * 16)
            drv.reg_write(0x24, (63 << 16) | 63)
            drv.reg_write(0x28, asq, width=8)
            drv.reg_write(0x30, acq, width=8)
            drv.reg_write(REG_CC, 1)
            yield sim.timeout(100_000)     # enable still in flight
            drv.reg_write(REG_CC, 0)       # tear it back down
            yield sim.timeout(10_000_000)
            csts = yield from drv.reg_read(REG_CSTS)
            return csts

        csts = sim.run(until=sim.process(flow(sim)))
        assert not csts & 1
        assert not ctrl.sqs
