"""Device-kill chaos on the cluster: ANA failover under fire.

The contract being proven: when 1 of N devices dies mid-run, every
in-flight I/O either completes on a surviving path or fails with a
defined status — nothing is lost, nothing completes twice (a duplicate
completion would blow up ``Event.succeed``, and ShareSan watches the
queue machinery independently).
"""

from __future__ import annotations

import pytest

from repro.cluster import ANA_INACCESSIBLE, ANA_OPTIMIZED, STATUS_NO_PATH
from repro.driver import STATUS_HOST_TIMEOUT
from repro.faults import FaultEvent, FaultPlan
from repro.scenarios import cluster
from repro.workloads import FioJob, fio_generator

#: permanently stall nvme1 while the workload is in full flight
KILL_NVME1 = FaultPlan((FaultEvent(at_ns=150_000, action="ctrl_stall",
                                   target="ctrl:nvme1", duration_ns=0),))

#: every status a cluster I/O may legally carry after the kill
DEFINED_STATUSES = {0, STATUS_HOST_TIMEOUT, STATUS_NO_PATH}


def _run_replicated(sanitizer: bool, ios: int = 150):
    """4 replicated volumes over 2 devices; kill one device mid-run."""
    scn = cluster(n_clients=4, n_devices=2, width=2, replicas=2,
                  seed=1309, queue_depth=8, faults=True,
                  plan=KILL_NVME1, sanitizer=sanitizer)
    scn.injector.start()
    procs = [scn.sim.process(fio_generator(
        vol, FioJob(name=f"j{i}", rw="randrw", iodepth=4,
                    total_ios=ios, seed_stream=f"fio{i}")))
        for i, vol in enumerate(scn.volumes)]
    scn.sim.run(until=scn.sim.timeout(500_000_000))
    assert all(p.triggered for p in procs)
    results = [(p.value.ios, p.value.errors) for p in procs]
    return scn, procs, results


class TestReplicatedFailover:
    """With a surviving replica, the kill is invisible to callers."""

    def test_no_lost_or_duplicated_completions(self):
        ios = 150
        scn, procs, results = _run_replicated(sanitizer=False, ios=ios)
        # Every submitted I/O came back exactly once: the generator
        # counted ios completions, and the block layer agrees.
        assert results == [(ios, 0)] * 4
        for vol in scn.volumes:
            assert vol.completed == ios
            assert vol.errors == 0
        # The dead device's paths were demoted; the survivor carried
        # the rest of the run.
        for vol in scn.volumes:
            assert vol.path_states == [ANA_OPTIMIZED, ANA_INACCESSIBLE] \
                or vol.path_states == [ANA_INACCESSIBLE, ANA_OPTIMIZED]
            assert vol.path_errors > 0
            assert vol.degraded_writes > 0
        assert sum(v.failovers for v in scn.volumes) > 0
        # Sub-client accounting is closed: everything the volumes
        # fanned out was completed by a path, with the only failures
        # being the host-timeout verdicts on the dead device.
        for sub in scn.subclients:
            assert len(sub._inflight) == 0
        # The trace shows the fault firing before the first path-down.
        faults = scn.trace_log("fault")
        downs = scn.trace_log("cluster")
        assert faults and downs
        assert faults[0][0] <= downs[0][0]

    def test_sharesan_cross_check_clean_and_bit_identical(self):
        scn_on, _procs, results_on = _run_replicated(sanitizer=True)
        assert scn_on.sanitizer is not None
        assert scn_on.sanitizer.clean, scn_on.sanitizer.findings
        trace_on = scn_on.trace_log()
        scn_off, _procs, results_off = _run_replicated(sanitizer=False)
        assert results_on == results_off
        assert trace_on == scn_off.trace_log()


class TestUnreplicatedFailure:
    """Without replicas, dead-device I/O fails with a *defined* status."""

    def test_defined_statuses_only_and_nothing_lost(self):
        ios = 120
        statuses: list[list[int]] = [[] for _ in range(4)]

        def consumer(sim, vol, jar, n):
            from repro.driver import BlockRequest
            stream = sim.rng.stream(f"load:{vol.name}")
            for _ in range(n):
                op = "read" if stream.random() < 0.5 else "write"
                lba = int(stream.integers(0, vol.capacity_lbas - 8))
                if op == "write":
                    req = BlockRequest("write", lba=lba, data=b"x" * 4096)
                else:
                    req = BlockRequest("read", lba=lba, nblocks=8)
                req = yield vol.submit(req)
                jar.append(req.status)

        scn = cluster(n_clients=4, n_devices=2, width=1, replicas=1,
                      seed=1310, queue_depth=8, faults=True,
                      plan=KILL_NVME1)
        scn.injector.start()
        procs = [scn.sim.process(consumer(scn.sim, vol, statuses[i], ios))
                 for i, vol in enumerate(scn.volumes)]
        scn.sim.run(until=scn.sim.timeout(800_000_000))
        assert all(p.triggered for p in procs)
        # Placement spread the 4 single-member volumes over 2 devices,
        # so some volumes lived on the killed one.
        dead = [vol for vol in scn.volumes
                if vol.layout.devices == (2,)]
        live = [vol for vol in scn.volumes
                if vol.layout.devices == (1,)]
        assert len(dead) == 2 and len(live) == 2
        for i, vol in enumerate(scn.volumes):
            # Nothing lost: every submission produced exactly one
            # status, and only defined ones.
            assert len(statuses[i]) == ios
            assert set(statuses[i]) <= DEFINED_STATUSES
            assert vol.completed == ios
        for vol in live:
            assert vol.errors == 0
            assert vol.path_states == [ANA_OPTIMIZED]
        for vol in dead:
            # First loss is the timeout verdict, the rest see no path.
            idx = scn.volumes.index(vol)
            assert STATUS_NO_PATH in statuses[idx]
            assert vol.path_states == [ANA_INACCESSIBLE]
            assert vol.errors > 0


class TestLinkFailover:
    """An NTB link cut isolates one member host — same contract."""

    def test_link_down_triggers_failover(self):
        plan = FaultPlan((FaultEvent(at_ns=150_000, action="link_down",
                                     target="link:host1",
                                     duration_ns=0),))
        scn = cluster(n_clients=3, n_devices=2, width=2, replicas=2,
                      seed=1311, queue_depth=8, faults=True, plan=plan)
        scn.injector.start()
        ios = 120
        procs = [scn.sim.process(fio_generator(
            vol, FioJob(name=f"j{i}", rw="randrw", iodepth=4,
                        total_ios=ios, seed_stream=f"fio{i}")))
            for i, vol in enumerate(scn.volumes)]
        scn.sim.run(until=scn.sim.timeout(800_000_000))
        assert all(p.triggered for p in procs)
        for p, vol in zip(procs, scn.volumes):
            assert (p.value.ios, p.value.errors) == (ios, 0)
            # host1 holds nvme1/device 2: that member went dark.
            assert ANA_INACCESSIBLE in vol.path_states
            assert ANA_OPTIMIZED in vol.path_states


class TestFailoverRejectsBadWiring:
    def test_volume_needs_matching_paths(self):
        scn = cluster(n_clients=1, n_devices=2, width=2, replicas=2,
                      seed=1312)
        from repro.cluster import ClusterVolume
        from repro.driver.blockdev import BlockError
        vol = scn.volumes[0]
        with pytest.raises(BlockError):
            ClusterVolume(scn.sim, vol.layout, vol.paths[:1])
