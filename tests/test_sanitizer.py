"""ShareSan: NULL-object defaults, detector fixtures, zero perturbation.

Three properties make the sanitizer trustworthy enough to leave wired
into every hot path:

* **off by default** — every instrumented object carries the shared
  :data:`NULL_SANITIZER` whose ``enabled`` guard costs one attribute
  load, so an un-sanitized run pays nothing;
* **each detector provably fires** — the fixture pack plants one
  intentional bug per detector and must trip exactly that detector,
  or the sanitizer is theatre;
* **zero perturbation** — a sanitized run is bit-identical to the same
  run without the sanitizer (trace log and per-client results), on the
  full shared-QP cluster and under chaos injection alike.
"""

from __future__ import annotations

import json

import pytest

from repro.config import SimulationConfig
from repro.sanitizer import (DETECTORS, FIXTURES, NULL_SANITIZER,
                             NullSanitizer, ShareSan, build_report,
                             render_json, render_text, run_scenario,
                             selftest)
from repro.faults import FaultPlan
from repro.scenarios import chaos_cluster, scale_out_cluster
from repro.sim import Simulator
from repro.workloads import FioJob, fio_generator


class TestNullObjectDefaults:
    """Sanitizer off: shared NULL object, no hooks, no cost."""

    def test_null_sanitizer_is_disabled_and_inert(self):
        assert NullSanitizer.enabled is False
        assert NULL_SANITIZER.on_mem_write(None, 0, 8) is None
        assert NULL_SANITIZER.on_anything_future(1, x=2) is None
        with pytest.raises(AttributeError):
            NULL_SANITIZER.findings  # noqa: B018 - only on_* resolve

    def test_instrumented_objects_default_to_null(self):
        from repro.memory.physmem import HostMemory
        from repro.nvme.queues import (CompletionQueueState,
                                       SubmissionQueueState)
        from repro.pcie.ntb import NtbFunction

        sim = Simulator(seed=1)
        assert HostMemory(sim, 1 << 20).sanitizer is NULL_SANITIZER
        assert SubmissionQueueState(qid=1, base_addr=0x1000,
                                    entries=16).sanitizer \
            is NULL_SANITIZER
        assert CompletionQueueState(qid=1, base_addr=0x2000,
                                    entries=16).sanitizer \
            is NULL_SANITIZER
        assert NtbFunction(sim, "ntb0", aperture=1 << 20).sanitizer \
            is NULL_SANITIZER

    def test_sharesan_starts_clean_and_enabled(self):
        san = ShareSan(Simulator(seed=1))
        assert san.enabled is True
        assert san.clean
        assert san.detectors_fired() == set()


class TestDetectorFixtures:
    """Each seeded bug trips its own detector — and only its own."""

    def test_fixture_pack_covers_every_detector(self):
        assert set(FIXTURES) == set(DETECTORS)

    @pytest.mark.parametrize("detector", sorted(FIXTURES))
    def test_fixture_fires_exactly_its_detector(self, detector):
        san = FIXTURES[detector]()
        assert san.detectors_fired() == {detector}
        assert not san.clean
        assert all(f.detector == detector for f in san.findings)

    def test_selftest_reports_every_detector_ok(self):
        results = selftest()
        assert set(results) == set(DETECTORS)
        assert all(entry["ok"] for entry in results.values())


class TestZeroPerturbation:
    """Sanitized runs are bit-identical to unsanitized ones."""

    def _scale_out(self, sanitizer: bool):
        scn = scale_out_cluster(64, seed=909, queue_depth=4,
                                telemetry=True, sanitizer=sanitizer)
        procs = [scn.sim.process(fio_generator(
            client, FioJob(name=f"j{i}", rw="randrw", iodepth=2,
                           total_ios=8, seed_stream=f"fio{i}")))
            for i, client in enumerate(scn.clients)]
        scn.sim.run(until=scn.sim.timeout(200_000_000))
        assert all(p.triggered for p in procs)
        results = [(p.value.ios, p.value.errors) for p in procs]
        tele = scn.telemetry
        assert tele is not None
        # Every exported telemetry byte doubles as the trace here: the
        # shared-QP scenario has no tracer, but the Perfetto stream
        # encodes per-span timing, so any perturbation shows up.
        return scn, (tele.prometheus_text(), tele.perfetto_json()), results

    def test_scale_out_cluster_is_clean_and_bit_identical(self):
        scn_on, bytes_on, results_on = self._scale_out(True)
        assert scn_on.sanitizer is not None
        assert scn_on.sanitizer.clean, scn_on.sanitizer.findings
        # The shared-QP machinery was actually exercised and watched.
        assert scn_on.sanitizer.stats.get("cqes_forwarded", 0) > 0
        _scn_off, bytes_off, results_off = self._scale_out(False)
        assert bytes_on == bytes_off
        assert results_on == results_off

    def _chaos(self, sanitizer: bool):
        plan = FaultPlan.kill("host2-nvme", at_ns=1_000_000)
        scn = chaos_cluster(n_clients=3, plan=plan, seed=77,
                            sanitizer=sanitizer)
        scn.injector.start()
        procs = [scn.sim.process(fio_generator(
            client, FioJob(name=f"j{i}", rw="randrw", iodepth=4,
                           total_ios=60, seed_stream=f"fio{i}")))
            for i, client in enumerate(scn.clients)]
        scn.sim.run(until=scn.sim.timeout(100_000_000))
        assert all(p.triggered for p in procs)
        results = [(p.value.ios, p.value.errors) for p in procs]
        return scn, scn.trace_log(), results

    def test_chaos_kill_is_clean_and_bit_identical(self):
        scn_on, trace_on, results_on = self._chaos(True)
        assert scn_on.sanitizer is not None
        assert scn_on.sanitizer.clean, scn_on.sanitizer.findings
        _scn_off, trace_off, results_off = self._chaos(False)
        assert trace_on == trace_off
        assert results_on == results_off


class TestReport:
    """build_report/render round-trips for humans and CI artifacts."""

    def test_dirty_report_renders_findings(self):
        san = FIXTURES["stale-doorbell"]()
        report = build_report(san, scenario="fixture", seed=71)
        assert report["clean"] is False
        assert report["scenario"] == "fixture"
        parsed = json.loads(render_json(report))
        assert parsed["findings"][0]["detector"] == "stale-doorbell"
        text = render_text(report)
        assert "FINDINGS" in text and "stale-doorbell" in text

    def test_clean_report_says_so(self):
        san = ShareSan(Simulator(seed=4))
        text = render_text(build_report(san, scenario="empty", seed=4))
        assert "clean" in text

    def test_run_scenario_multihost_smoke(self):
        run = run_scenario("multihost", ios=5, clients=2, seed=11)
        assert run.scenario == "multihost"
        assert run.clean, run.sanitizer.findings
        report = run.report()
        assert report["scenario"] == "multihost"
        assert report["ios"] == 10          # 2 clients x 5 ios, no errors
        assert report["errors"] == 0


class TestScenarioWiring:
    """Builders create, attach and return the sanitizer on request."""

    def test_scale_out_threads_sanitizer_through(self):
        scn = scale_out_cluster(40, seed=5, sanitizer=True)
        assert isinstance(scn.sanitizer, ShareSan)
        # Every host memory got hooked at attach time.
        for host in scn.testbed.hosts:
            assert host.memory.sanitizer is scn.sanitizer

    def test_sanitizer_off_leaves_null_objects(self):
        scn = scale_out_cluster(40, seed=5, sanitizer=False)
        assert scn.sanitizer is None
        for host in scn.testbed.hosts:
            assert host.memory.sanitizer is NULL_SANITIZER

    def test_chaos_cluster_threads_sanitizer_through(self):
        scn = chaos_cluster(n_clients=2, seed=9, sanitizer=True)
        assert isinstance(scn.sanitizer, ShareSan)

    def test_config_is_untouched_by_sanitized_builders(self):
        cfg = SimulationConfig()
        scale_out_cluster(32, config=cfg, seed=5, sanitizer=True)
        assert cfg == SimulationConfig()
