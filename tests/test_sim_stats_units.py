"""Tests for stats, RNG registry, tracing and unit helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import BoxplotStats, LatencyRecorder, Simulator, Tracer
from repro.sim.stats import Counter, iops, throughput_bytes_per_s
from repro.units import (KiB, MiB, fmt_ns, fmt_size, gbit_per_s, gb_per_s,
                         ns_to_us, parse_size, serialize_ns, us)


class TestLatencyRecorder:
    def test_record_and_summary(self):
        rec = LatencyRecorder("t")
        for v in [100, 200, 300, 400, 500]:
            rec.record(v)
        s = rec.summary()
        assert s.count == 5
        assert s.minimum == 100
        assert s.maximum == 500
        assert s.median == 300

    def test_growth_beyond_initial_capacity(self):
        rec = LatencyRecorder("grow", initial_capacity=16)
        for v in range(1000):
            rec.record(v)
        assert len(rec) == 1000
        assert rec.values()[-1] == 999

    def test_negative_rejected(self):
        rec = LatencyRecorder()
        with pytest.raises(ValueError):
            rec.record(-1)

    def test_empty_summary_is_zero(self):
        # An empty recording summarises to an explicit all-zero result
        # (numpy percentile-of-empty would raise) so exporters and
        # benchmarks handle idle devices without special cases.
        stats = LatencyRecorder().summary()
        assert stats.count == 0
        assert stats.minimum == 0 and stats.maximum == 0
        assert stats.mean == 0.0 and stats.p99 == 0.0
        assert "n=0" in str(stats)

    def test_single_sample_summary(self):
        rec = LatencyRecorder("one")
        rec.record(1500)
        stats = rec.summary()
        assert stats.count == 1
        assert stats.minimum == stats.maximum == 1500
        assert stats.q1 == stats.median == stats.q3 == stats.p99 == 1500.0
        assert stats.mean == 1500.0 and stats.stddev == 0.0

    def test_values_view_is_readonly(self):
        rec = LatencyRecorder()
        rec.record(5)
        view = rec.values()
        with pytest.raises(ValueError):
            view[0] = 9

    def test_merge(self):
        a, b = LatencyRecorder("a"), LatencyRecorder("b")
        a.record(1)
        b.record(2)
        b.record(3)
        a.merge(b)
        assert sorted(a.values().tolist()) == [1, 2, 3]

    @given(st.lists(st.integers(min_value=0, max_value=10**9),
                    min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_summary_invariants(self, values):
        stats = BoxplotStats.from_values(values)
        assert stats.minimum <= stats.q1 <= stats.median
        assert stats.median <= stats.q3 <= stats.p99 <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.count == len(values)

    def test_as_us(self):
        stats = BoxplotStats.from_values([1000, 2000, 3000])
        u = stats.as_us()
        assert u["min"] == 1.0 and u["max"] == 3.0

    def test_str_contains_fields(self):
        s = str(BoxplotStats.from_values([1500], name="x"))
        assert "x" in s and "min=1.50us" in s


class TestCounters:
    def test_counter(self):
        c = Counter()
        c.add("ios")
        c.add("ios", 4)
        assert c.get("ios") == 5
        assert c.get("missing") == 0
        assert c.as_dict() == {"ios": 5}

    def test_iops(self):
        assert iops(1000, 1_000_000_000) == pytest.approx(1000.0)
        assert iops(5, 0) == 0.0

    def test_throughput(self):
        assert throughput_bytes_per_s(4096, 1_000) == pytest.approx(4096e6)


class TestRng:
    def test_streams_independent_of_creation_order(self):
        a = Simulator(seed=11)
        b = Simulator(seed=11)
        # Create streams in different orders — values must match per-name.
        a_x = [a.rng.uniform_ns("x", 0, 1000) for _ in range(5)]
        a_y = [a.rng.uniform_ns("y", 0, 1000) for _ in range(5)]
        b_y = [b.rng.uniform_ns("y", 0, 1000) for _ in range(5)]
        b_x = [b.rng.uniform_ns("x", 0, 1000) for _ in range(5)]
        assert a_x == b_x
        assert a_y == b_y

    def test_uniform_bounds(self):
        sim = Simulator(seed=2)
        draws = [sim.rng.uniform_ns("u", 100, 150) for _ in range(500)]
        assert min(draws) >= 100 and max(draws) <= 150

    def test_uniform_degenerate(self):
        sim = Simulator(seed=2)
        assert sim.rng.uniform_ns("u", 5, 5) == 5
        with pytest.raises(ValueError):
            sim.rng.uniform_ns("u", 5, 4)

    def test_lognormal_median_and_cap(self):
        sim = Simulator(seed=3)
        draws = np.array([sim.rng.lognormal_ns("m", 8000, 0.05, cap=9000)
                          for _ in range(2000)])
        assert abs(np.median(draws) - 8000) < 250
        assert draws.max() <= 9000


class TestTracer:
    def test_emit_and_filter(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        tracer.emit("nvme", "fetch", sq=1)
        tracer.emit("pcie", "route")
        assert len(tracer.records) == 2
        assert tracer.filter("nvme")[0].payload == {"sq": 1}

    def test_category_filtering(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim, categories={"nvme"})
        tracer.emit("pcie", "dropped")
        tracer.emit("nvme", "kept")
        assert [r.message for r in tracer.records] == ["kept"]

    def test_disable_enable(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        tracer.disable()
        tracer.emit("x", "dropped")
        tracer.enable()
        tracer.emit("x", "kept")
        assert [r.message for r in tracer.records] == ["kept"]


class TestUnits:
    def test_time_conversions(self):
        assert us(7.7) == 7700
        assert ns_to_us(2500) == 2.5

    def test_bandwidth(self):
        assert gb_per_s(3.2) == 3.2
        assert gbit_per_s(100) == 12.5

    def test_serialize(self):
        assert serialize_ns(0, 1.0) == 0
        assert serialize_ns(4096, 4.0) == 1024
        assert serialize_ns(1, 100.0) == 1  # minimum 1 ns
        with pytest.raises(ValueError):
            serialize_ns(10, 0)

    def test_fmt(self):
        assert fmt_ns(500) == "500ns"
        assert fmt_ns(2500) == "2.50us"
        assert "ms" in fmt_ns(3_000_000)
        assert "s" in fmt_ns(2_000_000_000)
        assert fmt_size(512) == "512B"
        assert fmt_size(4096) == "4.00KiB"
        assert "MiB" in fmt_size(2 * MiB)
        assert "GiB" in fmt_size(3 * 1024 * MiB)

    @pytest.mark.parametrize("text,expected", [
        ("4k", 4 * KiB),
        ("4K", 4 * KiB),
        ("4kb", 4 * KiB),
        ("4KiB", 4 * KiB),
        ("512", 512),
        ("1m", MiB),
        ("2g", 2 * 1024 * MiB),
        ("0.5k", 512),
    ])
    def test_parse_size(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "k", "x4", "4x", "-1k"])
    def test_parse_size_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)
