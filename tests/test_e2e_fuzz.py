"""End-to-end fuzz: random operation sequences through the full remote
stack (client -> NTB fabric -> controller -> media) checked against a
shadow byte model.

This is the strongest integrity statement in the suite: whatever mix of
reads, writes, write-zeroes, compares and flushes at whatever sizes, the
shared device behaves exactly like a flat array of bytes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.driver import BlockRequest
from repro.nvme import Status
from repro.scenarios import ours_remote

REGION_LBAS = 2048          # 1 MiB playground
LBA = 512


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(3, 12))):
        kind = draw(st.sampled_from(
            ["write", "read", "write_zeroes", "compare_last", "flush"]))
        lba = draw(st.integers(0, REGION_LBAS - 256))
        nblocks = draw(st.sampled_from([1, 8, 16, 64, 256]))
        nblocks = min(nblocks, REGION_LBAS - lba)
        seed = draw(st.integers(0, 2**32 - 1))
        ops.append((kind, lba, nblocks, seed))
    return ops


class TestEndToEndFuzz:
    @given(operations(), st.integers(0, 2**31 - 1))
    @settings(max_examples=12, deadline=None)
    def test_device_matches_shadow_model(self, ops, seed):
        scenario = ours_remote(seed=seed % 100_000)
        device = scenario.device
        sim = scenario.sim
        shadow = bytearray(REGION_LBAS * LBA)
        last_write = {}   # lba -> payload, for compare ops

        def flow(sim):
            for kind, lba, nblocks, op_seed in ops:
                nbytes = nblocks * LBA
                if kind == "write":
                    rng = np.random.default_rng(op_seed)
                    payload = bytes(rng.integers(0, 256, nbytes,
                                                 dtype=np.uint8))
                    req = yield device.submit(
                        BlockRequest("write", lba=lba, data=payload))
                    assert req.ok
                    shadow[lba * LBA: lba * LBA + nbytes] = payload
                    last_write[lba] = payload
                elif kind == "read":
                    req = yield device.submit(
                        BlockRequest("read", lba=lba, nblocks=nblocks))
                    assert req.ok
                    expected = bytes(
                        shadow[lba * LBA: lba * LBA + nbytes])
                    assert req.result == expected, \
                        f"read mismatch at lba {lba} x{nblocks}"
                elif kind == "write_zeroes":
                    req = yield device.submit(
                        BlockRequest("write_zeroes", lba=lba,
                                     nblocks=nblocks))
                    assert req.ok
                    shadow[lba * LBA: lba * LBA + nbytes] = bytes(nbytes)
                elif kind == "compare_last":
                    if lba not in last_write:
                        continue
                    payload = last_write[lba]
                    req = yield device.submit(
                        BlockRequest("compare", lba=lba, data=payload))
                    current = bytes(shadow[lba * LBA:
                                           lba * LBA + len(payload)])
                    if current == payload:
                        assert req.ok
                    else:
                        assert req.status == Status.COMPARE_FAILURE
                else:  # flush
                    req = yield device.submit(BlockRequest("flush"))
                    assert req.ok
            # Final full-region readback in 128 KiB chunks.
            for chunk_lba in range(0, REGION_LBAS, 256):
                req = yield device.submit(
                    BlockRequest("read", lba=chunk_lba, nblocks=256))
                assert req.ok
                expected = bytes(shadow[chunk_lba * LBA:
                                        (chunk_lba + 256) * LBA])
                assert req.result == expected, \
                    f"final readback diverged at lba {chunk_lba}"
            return True

        assert sim.run(until=sim.process(flow(sim)))
