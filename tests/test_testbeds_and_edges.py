"""Testbed wiring invariants and system edge cases."""

import pytest

from repro.config import SimulationConfig
from repro.driver import (ClientError, DistributedNvmeClient, NvmeManager)
from repro.memory import OutOfSpace
from repro.pcie import NtbError
from repro.scenarios.testbed import LocalTestbed, PcieTestbed, RdmaTestbed
from repro.sisci import SisciError
from repro.units import MiB


class TestPcieTestbedWiring:
    def test_remote_path_crosses_three_chips(self):
        """Paper Fig. 9b: adapter + cluster switch + adapter."""
        bed = PcieTestbed(n_hosts=2, seed=1)
        path = bed.cluster.path(bed.hosts[1].rc, bed.hosts[0].rc)
        chips = [n for n in path if n.kind == "switch"]
        assert len(chips) == 3

    def test_extra_chips_extend_host0_path_only(self):
        bed = PcieTestbed(n_hosts=3, seed=2, extra_path_chips=2)
        to_dev = bed.cluster.path(bed.hosts[1].rc, bed.hosts[0].rc)
        chips = [n for n in to_dev if n.kind == "switch"]
        assert len(chips) == 5
        # host1 <-> host2 path is unaffected
        lateral = bed.cluster.path(bed.hosts[1].rc, bed.hosts[2].rc)
        assert len([n for n in lateral if n.kind == "switch"]) == 3

    def test_nvme_registered_with_smartio(self):
        bed = PcieTestbed(n_hosts=2, seed=3)
        devices = bed.smartio.list_devices()
        assert [d[1] for d in devices] == ["nvme0"]

    def test_install_second_nvme(self):
        bed = PcieTestbed(n_hosts=2, seed=4)
        second = bed.install_nvme(1, name="nvme1")
        assert len(bed.smartio.list_devices()) == 2
        assert second.host is bed.hosts[1]

    def test_sisci_node_ids_stable(self):
        bed = PcieTestbed(n_hosts=3, seed=5)
        assert [n.node_id for n in bed.sisci_nodes] == [4, 5, 6]


class TestRdmaTestbedWiring:
    def test_nics_attached_and_linked(self):
        bed = RdmaTestbed(seed=6)
        assert bed.target_nic._peer_nic is bed.initiator_nic
        assert bed.initiator_nic._peer_nic is bed.target_nic
        assert bed.nvme.host is bed.target_host

    def test_no_ntb_between_hosts(self):
        from repro.pcie import TopologyError
        bed = RdmaTestbed(seed=7)
        with pytest.raises(TopologyError):
            bed.cluster.path(bed.initiator_host.rc, bed.target_host.rc)


class TestResourceExhaustion:
    def test_ntb_aperture_exhaustion(self):
        bed = PcieTestbed(n_hosts=2, seed=8)
        ntb = bed.ntbs[1]
        size = bed.config.cluster.ntb_aperture_bytes
        ntb.map_window(bed.hosts[0], bed.hosts[0].memory.base, size // 2)
        ntb.map_window(bed.hosts[0],
                       bed.hosts[0].memory.base, size // 2)
        with pytest.raises(OutOfSpace):
            ntb.map_window(bed.hosts[0], bed.hosts[0].memory.base, 4096)

    def test_dram_exhaustion_surfaces(self):
        bed = PcieTestbed(n_hosts=2, seed=9, dram_size=1 * MiB)
        bed.hosts[1].alloc_dma(1 * MiB - 8192)
        with pytest.raises(OutOfSpace):
            bed.hosts[1].alloc_dma(64 * 1024)

    def test_queue_depth_clamped_to_entries(self):
        bed = PcieTestbed(n_hosts=2, seed=10)
        manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                              bed.nvme_device_id, bed.config)
        bed.sim.run(until=bed.sim.process(manager.start()))
        client = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(1),
                                       bed.nvme_device_id, bed.config,
                                       queue_entries=16, queue_depth=64)
        assert client.queue_depth == 15   # entries - 1


class TestControllerFairness:
    def test_two_queues_share_media_fairly(self):
        """Two clients with identical load complete within ~20% of each
        other — per-SQ fetch workers + FIFO media channels arbitrate
        fairly, as NVMe round-robin would."""
        from repro.workloads import FioJob, run_fio_many
        bed = PcieTestbed(n_hosts=3, seed=11)
        manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                              bed.nvme_device_id, bed.config)
        bed.sim.run(until=bed.sim.process(manager.start()))
        clients = []
        for i in (1, 2):
            c = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(i),
                                      bed.nvme_device_id, bed.config,
                                      slot_index=i, queue_depth=8)
            bed.sim.run(until=bed.sim.process(c.start()))
            clients.append(c)
        jobs = [(c, FioJob(name=f"f{i}", rw="randread", iodepth=8,
                           total_ios=400, region_lbas=1 << 20))
                for i, c in enumerate(clients)]
        results = run_fio_many(jobs)
        iops = [r.iops for r in results]
        assert min(iops) > 0.8 * max(iops)


class TestSegmentEdgeCases:
    def test_connect_before_available_after_remove(self):
        bed = PcieTestbed(n_hosts=2, seed=12)
        seg = bed.node(0).create_segment(60, 4096)
        seg.set_available()
        seg.set_unavailable()
        with pytest.raises(SisciError):
            bed.node(1).connect_segment(bed.node(0).node_id, 60)

    def test_client_slot_collision_is_isolated(self):
        """Two clients sharing a mailbox slot is a configuration error;
        distinct slots must never interfere (regression guard)."""
        bed = PcieTestbed(n_hosts=2, seed=13)
        manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                              bed.nvme_device_id, bed.config)
        bed.sim.run(until=bed.sim.process(manager.start()))
        a = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(1),
                                  bed.nvme_device_id, bed.config,
                                  slot_index=5)
        b = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(1),
                                  bed.nvme_device_id, bed.config,
                                  slot_index=6)
        bed.sim.run(until=bed.sim.process(a.start()))
        bed.sim.run(until=bed.sim.process(b.start()))
        assert {a.qid, b.qid} == {1, 2}


class TestLocalTestbed:
    def test_minimal_shape(self):
        bed = LocalTestbed(seed=14)
        path = bed.cluster.path(bed.host.rc, bed.nvme.node)
        assert len(path) == 2      # RC -> endpoint, no switches
        assert bed.nvme.regs.cap & 0xFFFF == 1023
