"""Per-rule fixture tests: one failing and one passing fixture each.

Fixtures are materialised under a ``repro/...`` relative path in a tmp
tree because several rules scope themselves by module path (e.g.
``no-nonposted-hotpath`` only looks at ``repro/driver/``).
"""

from __future__ import annotations

import textwrap

from repro.staticcheck import check_file, get_rule


def run_rule(tmp_path, rule_name, source, rel="repro/driver/fake.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return check_file(path, [get_rule(rule_name)])


# --- no-wallclock --------------------------------------------------------

def test_wallclock_flags_time_time(tmp_path):
    findings = run_rule(tmp_path, "no-wallclock", """
        import time
        def stamp():
            return time.time()
    """)
    assert [f.rule for f in findings] == ["no-wallclock"]
    assert "Simulator.now" in findings[0].message


def test_wallclock_flags_from_import_and_datetime(tmp_path):
    findings = run_rule(tmp_path, "no-wallclock", """
        from time import perf_counter
        from datetime import datetime
        def stamp():
            return perf_counter(), datetime.now()
    """)
    assert len(findings) == 2


def test_wallclock_passes_sim_now(tmp_path):
    findings = run_rule(tmp_path, "no-wallclock", """
        def stamp(sim):
            return sim.now          # simulated clock, not the host's
    """)
    assert findings == []


# --- seeded-rng-only -----------------------------------------------------

def test_rng_flags_bare_random(tmp_path):
    findings = run_rule(tmp_path, "seeded-rng-only", """
        import random
        def jitter():
            return random.random()
    """)
    assert [f.rule for f in findings] == ["seeded-rng-only"]


def test_rng_flags_numpy_default_rng_and_from_import(tmp_path):
    findings = run_rule(tmp_path, "seeded-rng-only", """
        import numpy as np
        from random import choice
        def jitter():
            return np.random.default_rng().integers(0, 4)
    """)
    assert len(findings) == 2


def test_rng_passes_registry_streams_and_annotations(tmp_path):
    findings = run_rule(tmp_path, "seeded-rng-only", """
        import numpy as np
        def jitter(sim) -> int:
            gen: np.random.Generator = sim.rng.stream("x")
            return int(gen.integers(0, 4))
    """)
    assert findings == []


def test_rng_exempts_the_registry_module(tmp_path):
    findings = run_rule(tmp_path, "seeded-rng-only", """
        import numpy as np
        def make(seed):
            return np.random.default_rng(np.random.SeedSequence(seed))
    """, rel="repro/sim/rng.py")
    assert findings == []


# --- no-nonposted-hotpath ------------------------------------------------

HOTPATH_READ = """
    class Driver:
        def _driver_submit(self, request):
            yield from self._prepare()

        def _prepare(self):
            raw = yield from self._meta_conn.read(0, 16)
            return raw
"""


def test_nonposted_flags_read_reachable_from_submit(tmp_path):
    findings = run_rule(tmp_path, "no-nonposted-hotpath", HOTPATH_READ,
                        rel="repro/driver/client.py")
    assert [f.rule for f in findings] == ["no-nonposted-hotpath"]
    assert "via _driver_submit" in findings[0].message
    assert "Fig. 8" in findings[0].message


def test_nonposted_is_scoped_to_driver_modules(tmp_path):
    findings = run_rule(tmp_path, "no-nonposted-hotpath", HOTPATH_READ,
                        rel="repro/nvme/controller.py")
    assert findings == []


def test_nonposted_passes_control_path_reads_and_posted_writes(tmp_path):
    findings = run_rule(tmp_path, "no-nonposted-hotpath", """
        class Driver:
            def start(self):
                # bootstrap (control path): non-posted reads are fine
                raw = yield from self._meta_conn.read(0, 16)
                return raw

            def _driver_submit(self, request):
                self._sq_conn.write(0, request.pack())
                yield self.sim.timeout(100)
    """, rel="repro/driver/client.py")
    assert findings == []


def test_nonposted_flags_reg_read_in_poller(tmp_path):
    findings = run_rule(tmp_path, "no-nonposted-hotpath", """
        class Driver:
            def _poller(self):
                while True:
                    status = yield from self._reg_read(0x1C)
    """, rel="repro/driver/stock.py")
    assert len(findings) == 1


# --- doorbell-after-sq-write ---------------------------------------------

def test_doorbell_flags_ring_before_sq_write(tmp_path):
    findings = run_rule(tmp_path, "doorbell-after-sq-write", """
        class Driver:
            def submit(self, sqe):
                self.fabric.post_write(
                    self.host.rc, self.host,
                    self.bar + sq_doorbell_offset(self.qid), b"tail")
                self.host.memory.write(self.sq.slot_addr(0), sqe.pack())
    """)
    assert [f.rule for f in findings] == ["doorbell-after-sq-write"]
    assert "stale SQE" in findings[0].message


def test_doorbell_passes_write_then_ring(tmp_path):
    findings = run_rule(tmp_path, "doorbell-after-sq-write", """
        class Driver:
            def submit(self, sqe):
                self.host.memory.write(self.sq.slot_addr(0), sqe.pack())
                self.fabric.post_write(
                    self.host.rc, self.host,
                    self.bar + sq_doorbell_offset(self.qid), b"tail")
    """)
    assert findings == []


def test_doorbell_reg_write_carrying_ring_is_not_its_own_write(tmp_path):
    findings = run_rule(tmp_path, "doorbell-after-sq-write", """
        class Driver:
            def submit(self, sqe):
                self._reg_write(
                    sq_doorbell_offset(0), self.sq.tail)
                self.host.memory.write(self.sq.slot_addr(0), sqe.pack())
    """)
    assert len(findings) == 1


def test_doorbell_flags_cq_ring_before_consume(tmp_path):
    findings = run_rule(tmp_path, "doorbell-after-sq-write", """
        class Driver:
            def _drain(self):
                self.fabric.post_write(
                    self.host.rc, self.host,
                    self.bar + cq_doorbell_offset(1), b"head")
                self.cq.consume()
    """)
    assert len(findings) == 1


def test_doorbell_cq_ring_helper_without_consume_is_fine(tmp_path):
    findings = run_rule(tmp_path, "doorbell-after-sq-write", """
        class Driver:
            def _ring_cq_doorbell(self):
                self.fabric.post_write(
                    self.host.rc, self.host,
                    self.bar + cq_doorbell_offset(1), b"head")
    """)
    assert findings == []


# --- units-discipline ----------------------------------------------------

def test_units_flags_float_ns_kwarg_timeout_and_bs_string(tmp_path):
    findings = run_rule(tmp_path, "units-discipline", """
        def setup(sim, Job):
            job = Job(delay_ns=2.5, bs="4k")
            yield sim.timeout(1.5)
    """)
    assert len(findings) == 3
    assert any("parse_size" in f.message for f in findings)


def test_units_flags_division_bound_to_ns_name(tmp_path):
    findings = run_rule(tmp_path, "units-discipline", """
        def budget(cfg):
            slack_ns = cfg.total_ns / 2
            return slack_ns
    """)
    assert len(findings) == 1


def test_units_flags_float_into_record_and_observe(tmp_path):
    findings = run_rule(tmp_path, "units-discipline", """
        def snapshot(rec, metrics, lat):
            rec.record(lat / 2)
            metrics.observe("repro_io_latency_ns", lat * 1.5,
                            device="d0")
    """)
    assert len(findings) == 2
    assert any("record()" in f.message for f in findings)
    assert any("observe()" in f.message for f in findings)


def test_units_passes_integer_record_and_observe(tmp_path):
    findings = run_rule(tmp_path, "units-discipline", """
        def snapshot(rec, metrics, lat):
            rec.record(round(lat / 2))
            metrics.observe("repro_io_latency_ns", int(lat),
                            device="d0")
    """)
    assert findings == []


def test_units_flags_float_into_record_io(tmp_path):
    findings = run_rule(tmp_path, "units-discipline", """
        def snapshot(hists, lat):
            hists.record_io("host1", "read", "nvme0", lat / 2)
            hists.record_io("host1", "read", "nvme0", round(lat / 2))
    """)
    assert len(findings) == 1
    assert "record_io()" in findings[0].message


def test_units_passes_integer_ns_and_declared_rates(tmp_path):
    findings = run_rule(tmp_path, "units-discipline", """
        from repro.units import us

        def setup(sim, Job):
            per_byte_ns = 1.0 / 2.4          # rate: ns per byte
            rate_ns: float = 0.5             # declared-float contract
            job = Job(delay_ns=us(2.5), per_byte_ns=1.0 / 1.8)
            yield sim.timeout(us(1.5))
    """)
    assert findings == []


# --- sim-process-yields --------------------------------------------------

def test_process_flags_yieldless_method(tmp_path):
    findings = run_rule(tmp_path, "sim-process-yields", """
        class Driver:
            def start(self, sim):
                sim.process(self._poller())

            def _poller(self):
                self.drained = 0
    """)
    assert [f.rule for f in findings] == ["sim-process-yields"]
    assert "_poller" in findings[0].message


def test_process_passes_generators_and_factories(tmp_path):
    findings = run_rule(tmp_path, "sim-process-yields", """
        def worker(sim):
            yield sim.timeout(100)

        class Driver:
            def start(self, sim):
                sim.process(self._poller())
                sim.process(self._factory())
                sim.process(worker(sim))

            def _poller(self):
                while True:
                    yield self.sim.timeout(10)

            def _factory(self):
                return make_generator_elsewhere()
    """)
    assert findings == []


# --- hotpath-alloc -------------------------------------------------------

def test_hotpath_alloc_flags_dataclass_and_comprehensions(tmp_path):
    findings = run_rule(tmp_path, "hotpath-alloc", """
        import dataclasses

        @dataclasses.dataclass
        class Entry:
            addr: int

        class Router:
            def resolve(self, addr):
                # hot-path
                hops = [n for n in self.nodes]
                return Entry(addr=addr)
    """)
    assert [f.rule for f in findings] == ["hotpath-alloc", "hotpath-alloc"]
    messages = " ".join(f.message for f in findings)
    assert "list comprehension" in messages
    assert "Entry" in messages


def test_hotpath_alloc_ignores_unmarked_functions(tmp_path):
    findings = run_rule(tmp_path, "hotpath-alloc", """
        import dataclasses

        @dataclasses.dataclass
        class Entry:
            addr: int

        class Router:
            def _build_plan(self, addrs):
                # cold: runs once per topology change
                return {a: Entry(addr=a) for a in addrs}

            def resolve(self, addr):
                # hot-path
                return self._plan[addr]
    """)
    assert findings == []


def test_hotpath_alloc_marker_binds_to_innermost_function(tmp_path):
    findings = run_rule(tmp_path, "hotpath-alloc", """
        class Router:
            def outer(self):
                extents = [b for b in self.blocks]

                def inner(x):
                    # hot-path
                    return x + 1
                return inner
    """)
    # The marker inside ``inner`` must not drag ``outer`` (and its
    # comprehension) into the contract.
    assert findings == []


def test_hotpath_alloc_respects_suppression(tmp_path):
    findings = run_rule(tmp_path, "hotpath-alloc", """
        import dataclasses

        @dataclasses.dataclass
        class Entry:
            addr: int

        class Router:
            def resolve(self, addr):
                # hot-path
                cached = self._cache.get(addr)
                if cached is not None:
                    return cached
                # staticcheck: ignore[hotpath-alloc] miss path, built once
                entry = Entry(addr=addr)
                self._cache[addr] = entry
                return entry
    """)
    assert findings == []


# --- lease-guard ---------------------------------------------------------

def test_lease_guard_flags_unlocked_queue_lifecycle(tmp_path):
    findings = run_rule(tmp_path, "lease-guard", """
        class NvmeManager:
            def _grant(self, qid, entries):
                yield from self.admin.create_io_cq(qid, entries, 0)
                yield from self.admin.create_io_sq(qid, entries, 0, qid)
    """, rel="repro/driver/manager.py")
    assert [f.rule for f in findings] == ["lease-guard", "lease-guard"]
    assert "_admin_lock" in findings[0].message


def test_lease_guard_passes_locked_calls(tmp_path):
    findings = run_rule(tmp_path, "lease-guard", """
        class NvmeManager:
            def _grant(self, qid, entries):
                lock = self._admin_lock.request()
                yield lock
                try:
                    yield from self.admin.create_io_cq(qid, entries, 0)
                    yield from self.admin.create_io_sq(qid, entries, 0,
                                                       qid)
                finally:
                    self._admin_lock.release(lock)
    """, rel="repro/driver/manager.py")
    assert findings == []


def test_lease_guard_scoped_to_the_manager(tmp_path):
    # The same unlocked call outside repro/driver/manager.py is not the
    # manager's admin path and stays out of scope.
    findings = run_rule(tmp_path, "lease-guard", """
        class Harness:
            def bootstrap(self, qid):
                yield from self.admin.create_io_cq(qid, 64, 0)
    """, rel="repro/driver/helper.py")
    assert findings == []


# --- window-epoch --------------------------------------------------------

def test_window_epoch_flags_blind_tenancy_change(tmp_path):
    findings = run_rule(tmp_path, "window-epoch", """
        def admit(qp, widx, tenant):
            qp.tenants[widx] = tenant
            return widx
    """, rel="repro/driver/manager.py")
    assert [f.rule for f in findings] == ["window-epoch"]
    assert "win_next_tail" in findings[0].message


def test_window_epoch_passes_with_handoff_state(tmp_path):
    findings = run_rule(tmp_path, "window-epoch", """
        def admit(qp, widx, tenant):
            if widx in qp.draining:
                return None
            qp.tenants[widx] = tenant
            return qp.win_next_tail[widx]
    """, rel="repro/driver/manager.py")
    assert findings == []


def test_window_epoch_scoped_to_the_driver(tmp_path):
    findings = run_rule(tmp_path, "window-epoch", """
        def admit(qp, widx, tenant):
            qp.tenants[widx] = tenant
    """, rel="repro/scenarios/fake.py")
    assert findings == []


# --- sanitizer-hook ------------------------------------------------------

def test_sanitizer_hook_flags_unhooked_ring_mutation(tmp_path):
    findings = run_rule(tmp_path, "sanitizer-hook", """
        class Ring:
            def advance_head(self):
                slot = self.head
                self.head = (self.head + 1) % self.entries
                return slot
    """, rel="repro/nvme/queues.py")
    assert [f.rule for f in findings] == ["sanitizer-hook"]
    assert "ShareSan" in findings[0].message


def test_sanitizer_hook_passes_hooked_mutation(tmp_path):
    findings = run_rule(tmp_path, "sanitizer-hook", """
        class Ring:
            def advance_head(self):
                san = self.sanitizer
                if san.enabled:
                    san.on_sq_fetch(self)
                slot = self.head
                self.head = (self.head + 1) % self.entries
                return slot
    """, rel="repro/nvme/queues.py")
    assert findings == []


def test_sanitizer_hook_covers_extent_stores_and_suppression(tmp_path):
    flagged = run_rule(tmp_path, "sanitizer-hook", """
        class Mem:
            def poke(self, index, data):
                self._extents[index] = data
    """, rel="repro/memory/physmem.py")
    assert [f.rule for f in flagged] == ["sanitizer-hook"]
    suppressed = run_rule(tmp_path, "sanitizer-hook", """
        class Mem:
            def poke(self, index, data):
                # staticcheck: ignore[sanitizer-hook] debug backdoor
                self._extents[index] = data
    """, rel="repro/memory/physmem.py")
    assert suppressed == []


def test_sanitizer_hook_scoped_to_choke_points(tmp_path):
    # Ring-index mutation outside physmem/queues (e.g. the client's SQ
    # head reclaim) is out of scope by design.
    findings = run_rule(tmp_path, "sanitizer-hook", """
        class Client:
            def _dispatch(self, cqe):
                self.head = cqe.sq_head
    """, rel="repro/driver/client.py")
    assert findings == []


# --- shard-channel-order -------------------------------------------------

def test_shard_order_flags_set_iteration_in_marked_function(tmp_path):
    findings = run_rule(tmp_path, "shard-channel-order", """
        def merge(parts):
            # cross-shard merge
            keys = set()
            for part in parts:
                keys |= set(part)
            return [k for k in keys]
    """, rel="repro/sim/fake.py")
    assert [f.rule for f in findings] == ["shard-channel-order"]
    assert "sorted" in findings[0].message


def test_shard_order_flags_dict_views_and_set_calls(tmp_path):
    findings = run_rule(tmp_path, "shard-channel-order", """
        def merge(snapshots):
            '''Union the rows.

            # cross-shard merge
            '''
            out = {}
            for snap in snapshots:
                for name, row in snap.items():
                    out[name] = row
            for name in set(out):
                yield out[name]
    """, rel="repro/sim/fake.py")
    assert len(findings) == 2
    assert any(".items()" in f.message for f in findings)
    assert any("set()" in f.message for f in findings)


def test_shard_order_passes_sorted_iteration(tmp_path):
    findings = run_rule(tmp_path, "shard-channel-order", """
        def merge(parts):
            # cross-shard merge
            out = {}
            for part in parts:
                for key in sorted(part):
                    out[key] = part[key]
            return out
    """, rel="repro/sim/fake.py")
    assert findings == []


def test_shard_order_ignores_unmarked_functions(tmp_path):
    # The same set iteration is fine outside the merge contract.
    findings = run_rule(tmp_path, "shard-channel-order", """
        def collect(parts):
            keys = set()
            for part in parts:
                for key in part.keys():
                    keys.add(key)
            return keys
    """, rel="repro/sim/fake.py")
    assert findings == []


def test_shard_order_marker_scopes_to_innermost_function(tmp_path):
    # The marker sits in the closure; the enclosing function's set
    # iteration must not be dragged into the contract.
    findings = run_rule(tmp_path, "shard-channel-order", """
        def outer(parts):
            def merge(box):
                # cross-shard merge
                return [x for x in sorted(box)]
            for part in {p for p in parts}:
                merge(part)
    """, rel="repro/sim/fake.py")
    assert findings == []


def test_shard_order_suppression_comment(tmp_path):
    findings = run_rule(tmp_path, "shard-channel-order", """
        def merge(parts):
            # cross-shard merge
            for part in set(parts):  # staticcheck: ignore[shard-channel-order] order-free tally
                part.tally()
    """, rel="repro/sim/fake.py")
    assert findings == []
