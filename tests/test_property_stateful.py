"""Hypothesis stateful machines for core data structures."""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.memory import OutOfSpace, RangeAllocator
from repro.nvme import CompletionQueueState, QueueError, SubmissionQueueState


class AllocatorMachine(RuleBasedStateMachine):
    """RangeAllocator must never hand out overlapping ranges and must
    restore full capacity when everything is freed."""

    def __init__(self):
        super().__init__()
        self.alloc = RangeAllocator(0x10_000, 0x10_000)
        self.live: dict[int, int] = {}

    @rule(size=st.integers(1, 0x2000),
          alignment=st.sampled_from([1, 8, 64, 4096]))
    def allocate(self, size, alignment):
        try:
            addr = self.alloc.alloc(size, alignment)
        except OutOfSpace:
            return
        assert addr % alignment == 0
        assert 0x10_000 <= addr and addr + size <= 0x20_000
        for other, other_size in self.live.items():
            assert addr + size <= other or other + other_size <= addr, \
                "overlapping allocation"
        self.live[addr] = size

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free_one(self, data):
        addr = data.draw(st.sampled_from(sorted(self.live)))
        self.alloc.free(addr)
        del self.live[addr]

    @invariant()
    def accounting_consistent(self):
        assert self.alloc.allocated_bytes == sum(self.live.values())
        assert self.alloc.free_bytes == 0x10_000 - sum(self.live.values())

    def teardown(self):
        for addr in list(self.live):
            self.alloc.free(addr)
        assert self.alloc.free_bytes == 0x10_000
        assert self.alloc.alloc(0x10_000) == 0x10_000


TestAllocatorMachine = AllocatorMachine.TestCase
TestAllocatorMachine.settings = settings(max_examples=30,
                                         stateful_step_count=40,
                                         deadline=None)


class QueuePairMachine(RuleBasedStateMachine):
    """Producer/consumer on an SQ + CQ pair mirrors a simple model:
    occupancy is bounded, phases always agree, slots advance mod N."""

    ENTRIES = 8

    def __init__(self):
        super().__init__()
        self.sq = SubmissionQueueState(qid=1, base_addr=0x1000,
                                       entries=self.ENTRIES)
        self.cq_prod = CompletionQueueState(qid=1, base_addr=0x2000,
                                            entries=self.ENTRIES)
        self.cq_cons = CompletionQueueState(qid=1, base_addr=0x2000,
                                            entries=self.ENTRIES)
        self.submitted = 0
        self.fetched = 0
        self.completed = 0
        self.reaped = 0

    @precondition(lambda self: not self.sq.is_full())
    @rule()
    def submit(self):
        slot = self.sq.advance_tail()
        assert slot == (self.submitted % self.ENTRIES)
        self.submitted += 1

    @precondition(lambda self: not self.sq.is_empty())
    @rule()
    def fetch(self):
        slot = self.sq.advance_head()
        assert slot == (self.fetched % self.ENTRIES)
        self.fetched += 1

    # CQ can hold at most ENTRIES-1 un-reaped completions before the
    # producer would overwrite unconsumed entries.
    @precondition(lambda self: (self.completed < self.fetched
                                and self.completed - self.reaped
                                < self.ENTRIES - 1))
    @rule()
    def complete(self):
        slot, phase = self.cq_prod.produce_slot()
        assert slot == (self.completed % self.ENTRIES)
        # Consumer must expect exactly this phase when it reaps it.
        self.completed += 1
        self._pending_phase = phase

    @precondition(lambda self: self.reaped < self.completed)
    @rule()
    def reap(self):
        expected = self.cq_cons.consumer_phase()
        slot = self.cq_cons.consume()
        assert slot == (self.reaped % self.ENTRIES)
        # Recompute what the producer stamped on that slot.
        wraps = self.reaped // self.ENTRIES
        produced_phase = 1 ^ (wraps & 1)
        assert expected == produced_phase, \
            "consumer phase diverged from producer phase"
        self.reaped += 1

    @invariant()
    def occupancy_bounds(self):
        assert 0 <= self.sq.occupancy() <= self.ENTRIES - 1
        assert self.sq.occupancy() == self.submitted - self.fetched
        assert 0 <= self.completed - self.reaped <= self.ENTRIES - 1


TestQueuePairMachine = QueuePairMachine.TestCase
TestQueuePairMachine.settings = settings(max_examples=40,
                                         stateful_step_count=60,
                                         deadline=None)
