"""Cross-layer ordering and end-to-end data-integrity tests.

These pin the causal properties the paper's design relies on:
the controller never observes a doorbell before the SQE it covers, read
data always lands before its CQE, and concurrent multi-host traffic
never corrupts data.
"""

import numpy as np
import pytest

from repro.driver import BlockRequest, DistributedNvmeClient, NvmeManager
from repro.scenarios.testbed import PcieTestbed
from repro.sim import Tracer
from repro.workloads import FioJob, run_fio_many


def make_traced_cluster(seed=180):
    bed = PcieTestbed(n_hosts=2, with_nvme=True, seed=seed)
    tracer = Tracer(bed.sim)
    bed.nvme.tracer = tracer
    manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                          bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(manager.start()))
    client = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(1),
                                   bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(client.start()))
    tracer.clear()
    return bed, client, tracer


class TestControllerOrdering:
    def test_fetch_never_precedes_doorbell(self):
        bed, client, tracer = make_traced_cluster()

        def flow(sim):
            for i in range(30):
                req = yield client.submit(
                    BlockRequest("read", lba=i * 8, nblocks=8))
                assert req.ok

        bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        doorbells = [r for r in tracer.filter("nvme")
                     if r.message == "doorbell" and not r.payload["cq"]
                     and r.payload["qid"] == client.qid]
        fetches = [r for r in tracer.filter("nvme")
                   if r.message == "fetched"
                   and r.payload["qid"] == client.qid]
        assert len(fetches) == 30
        # Every fetch must happen at/after a doorbell announcing it.
        for i, fetch in enumerate(fetches):
            covering = [d for d in doorbells
                        if d.time_ns <= fetch.time_ns
                        and d.payload["value"] >= (i + 1) % 64]
            assert covering, f"fetch {i} before its doorbell"

    def test_completion_count_matches(self):
        bed, client, tracer = make_traced_cluster()

        def flow(sim):
            for i in range(10):
                yield client.submit(BlockRequest("read", lba=i,
                                                 nblocks=1))

        bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        completions = [r for r in tracer.filter("nvme")
                       if r.message == "completed"]
        assert len(completions) == 10


class TestReadDataBeforeCqe:
    def test_buffer_filled_when_request_completes(self):
        """When the block layer reports a read complete, the data is
        already in the bounce buffer — posted ordering in action.  We
        verify by checking contents at the completion instant for data
        that was written with a distinctive pattern."""
        bed, client, tracer = make_traced_cluster(seed=181)
        pattern = bytes([0xC7]) * 4096
        bed.nvme.namespaces[1].write_blocks(512, pattern)

        def flow(sim):
            req = yield client.submit(BlockRequest("read", lba=512,
                                                   nblocks=8))
            # Inspect at the exact completion timestamp.
            assert req.result == pattern
            return True

        assert bed.sim.run(until=bed.sim.process(flow(bed.sim)))


class TestMultiHostIntegrity:
    def test_concurrent_writers_disjoint_regions(self):
        """4 clients hammer disjoint LBA regions concurrently with
        verify-after-write enabled; no corruption, no cross-talk."""
        bed = PcieTestbed(n_hosts=5, with_nvme=True, seed=182)
        manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                              bed.nvme_device_id, bed.config)
        bed.sim.run(until=bed.sim.process(manager.start()))
        clients = []
        for i in range(1, 5):
            c = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(i),
                                      bed.nvme_device_id, bed.config,
                                      slot_index=i)
            bed.sim.run(until=bed.sim.process(c.start()))
            clients.append(c)

        def writer(sim, client, base, tag):
            rng = np.random.default_rng(tag)
            written = {}
            for k in range(25):
                lba = base + int(rng.integers(0, 100)) * 8
                payload = bytes(rng.integers(0, 256, 4096, dtype=np.uint8))
                req = yield client.submit(BlockRequest("write", lba=lba,
                                                       data=payload))
                assert req.ok
                written[lba] = payload
            # read back through the same client
            for lba, payload in written.items():
                req = yield client.submit(BlockRequest("read", lba=lba,
                                                       nblocks=8))
                assert req.ok
                assert req.result == payload, f"corruption at {lba}"
            return written

        procs = [bed.sim.process(writer(bed.sim, c, 100_000 * (i + 1), i))
                 for i, c in enumerate(clients)]
        done = bed.sim.all_of(procs)
        bed.sim.run(until=done)
        # Cross-check each client's data from a *different* client.
        all_written = [p.value for p in procs]

        def cross_reader(sim):
            for i, written in enumerate(all_written):
                reader = clients[(i + 1) % len(clients)]
                for lba, payload in list(written.items())[:5]:
                    req = yield reader.submit(
                        BlockRequest("read", lba=lba, nblocks=8))
                    assert req.ok and req.result == payload
            return True

        assert bed.sim.run(until=bed.sim.process(cross_reader(bed.sim)))

    def test_simultaneous_mixed_workloads(self):
        """Readers and writers on separate hosts run simultaneously
        without errors (the paper's parallel-operation claim)."""
        bed = PcieTestbed(n_hosts=4, with_nvme=True, seed=183)
        manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                              bed.nvme_device_id, bed.config)
        bed.sim.run(until=bed.sim.process(manager.start()))
        clients = []
        for i in range(1, 4):
            c = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(i),
                                      bed.nvme_device_id, bed.config,
                                      slot_index=i, queue_depth=8)
            bed.sim.run(until=bed.sim.process(c.start()))
            clients.append(c)
        jobs = [
            (clients[0], FioJob(name="w", rw="randwrite", iodepth=4,
                                total_ios=150, region_lbas=50_000)),
            (clients[1], FioJob(name="r", rw="randread", iodepth=4,
                                total_ios=150, region_lbas=50_000)),
            (clients[2], FioJob(name="rw", rw="randrw", iodepth=4,
                                total_ios=150, region_lbas=50_000)),
        ]
        results = run_fio_many(jobs)
        assert all(r.errors == 0 for r in results)
        assert all(r.ios == 150 for r in results)
