"""Round-trip and edge-case properties of :mod:`repro.units`."""

from __future__ import annotations

import math

import pytest

from repro.units import (GiB, KiB, MiB, MS, NS, SEC, US, fmt_ns, fmt_size,
                         gb_per_s, gbit_per_s, ns_to_us, parse_size,
                         serialize_ns, us)

# --- time ----------------------------------------------------------------


def test_time_constants_are_integer_ns():
    assert (NS, US, MS, SEC) == (1, 1_000, 1_000_000, 1_000_000_000)
    assert all(isinstance(c, int) for c in (NS, US, MS, SEC))


@pytest.mark.parametrize("ns", [0, 1, 499, 500, 1_000, 14_500,
                                1_000_000_000, 3 * SEC + 7])
def test_us_ns_round_trip_from_ns(ns):
    assert us(ns_to_us(ns)) == ns


@pytest.mark.parametrize("micros", [0.0, 0.5, 1.0, 14.5, 1e6])
def test_ns_us_round_trip_from_us(micros):
    assert ns_to_us(us(micros)) == pytest.approx(micros, abs=5e-4)


def test_us_always_returns_int():
    assert isinstance(us(1.4999), int)
    assert us(1.4999) == 1_500


def test_bandwidth_helpers():
    assert gb_per_s(2.4) == 2.4            # GB/s == bytes/ns (identity)
    assert gbit_per_s(100) == 12.5         # 100 Gb/s == 12.5 bytes/ns


def test_serialize_ns_edges():
    assert serialize_ns(0, 1.0) == 0
    assert serialize_ns(-5, 1.0) == 0
    assert serialize_ns(1, 100.0) == 1     # floor of 1 ns for any payload
    assert serialize_ns(4096, 1.0) == 4096
    assert serialize_ns(4096, 2.4) == math.ceil(4096 / 2.4)
    with pytest.raises(ValueError):
        serialize_ns(1, 0.0)


def test_fmt_ns_scales():
    assert fmt_ns(999) == "999ns"
    assert fmt_ns(14_500) == "14.50us"
    assert fmt_ns(2_500_000) == "2.500ms"
    assert fmt_ns(3 * SEC) == "3.000s"


# --- sizes ---------------------------------------------------------------


@pytest.mark.parametrize("n", [
    0, 1, 2, 512, 1000, 1023,                       # bare bytes
    KiB, 4 * KiB, 1536,                             # KiB with exact .00/.50
    MiB, 256 * MiB,                                 # MiB
    GiB, 3 * GiB, 64 * GiB, 2 * 1024 * GiB,         # multi-GiB / TiB range
])
def test_parse_size_fmt_size_round_trip(n):
    assert parse_size(fmt_size(n)) == n


@pytest.mark.parametrize("text,expected", [
    ("0", 0), ("0B", 0), ("1B", 1), ("512", 512), ("512B", 512),
    ("4k", 4 * KiB), ("4K", 4 * KiB), ("4kb", 4 * KiB),
    ("4KiB", 4 * KiB), ("128K", 128 * KiB),
    ("1M", MiB), ("1m", MiB), ("1MiB", MiB),
    ("1g", GiB), ("2GiB", 2 * GiB),
    ("1.5k", 1536), ("0.5M", 512 * KiB),
    (" 4k ", 4 * KiB),                      # surrounding whitespace
])
def test_parse_size_accepts_fio_spellings(text, expected):
    assert parse_size(text) == expected


@pytest.mark.parametrize("text", ["", "k", "B", "iB", "4x", "abc", "-1",
                                  "--4k"])
def test_parse_size_rejects_garbage(text):
    with pytest.raises(ValueError):
        parse_size(text)


def test_fmt_size_edges():
    assert fmt_size(0) == "0B"
    assert fmt_size(1) == "1B"
    assert fmt_size(KiB) == "1.00KiB"
    assert fmt_size(GiB) == "1.00GiB"
    assert fmt_size(1023) == "1023B"
