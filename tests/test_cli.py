"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "ours-remote"
        assert args.rw == "randread"
        assert args.iodepth == 1

    def test_bad_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "bogus"])

    def test_bad_rw_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--rw", "trim"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("local-linux", "nvmeof-remote", "ours-local",
                     "ours-remote"):
            assert name in out

    def test_run(self, capsys):
        rc = main(["run", "--scenario", "ours-local", "--ios", "120",
                   "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kIOPS" in out
        assert "med=" in out

    def test_run_write_mode(self, capsys):
        rc = main(["run", "--scenario", "local-linux", "--rw",
                   "randwrite", "--ios", "100", "--bs", "8k"])
        assert rc == 0
        assert "cli-write" in capsys.readouterr().out

    def test_multihost(self, capsys):
        rc = main(["multihost", "--clients", "2", "--ios", "60",
                   "--iodepth", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "host1-nvme" in out

    def test_fig10_small(self, capsys):
        rc = main(["fig10", "--ios", "150"])
        out = capsys.readouterr().out
        assert "minimum-latency delta" in out
        assert rc == 0, out
