"""Integration tests for the NVMe-oF stack (initiator + SPDK target)."""

import numpy as np
import pytest

from repro.nvme import SubmissionEntry, CompletionEntry
from repro.nvmeof import CommandCapsule, NvmeofInitiator, ResponseCapsule, SpdkTarget
from repro.driver.blockdev import BlockRequest
from repro.scenarios.testbed import RdmaTestbed


def make_stack(seed=81, queue_depth=32):
    bed = RdmaTestbed(seed=seed)
    target = SpdkTarget(bed.sim, bed.fabric, bed.target_host,
                        bed.nvme.bars[0].base, bed.target_nic, bed.config)
    bed.sim.run(until=bed.sim.process(target.start()))
    initiator = NvmeofInitiator(bed.sim, bed.initiator_host,
                                bed.initiator_nic, bed.config,
                                queue_depth=queue_depth)
    bed.sim.run(until=bed.sim.process(initiator.connect(target)))
    return bed, target, initiator


class TestCapsules:
    def test_command_roundtrip(self):
        sqe = SubmissionEntry(opcode=2, cid=42, nsid=1, cdw10=100)
        cap = CommandCapsule(sqe, buffer_addr=0x1234_5000, rkey=0x77)
        back = CommandCapsule.unpack(cap.pack())
        assert back.sqe == sqe
        assert back.buffer_addr == 0x1234_5000
        assert back.rkey == 0x77

    def test_command_with_inline_data(self):
        sqe = SubmissionEntry(opcode=1, cid=7)
        cap = CommandCapsule(sqe, inline_data=b"z" * 4096)
        back = CommandCapsule.unpack(cap.pack())
        assert back.inline_data == b"z" * 4096
        assert back.wire_size == cap.wire_size

    def test_response_roundtrip(self):
        cqe = CompletionEntry(cid=9, status=0, phase=1, sq_head=5)
        rsp = ResponseCapsule(cqe)
        assert ResponseCapsule.unpack(rsp.pack()).cqe == cqe

    def test_bad_capsules_rejected(self):
        with pytest.raises(ValueError):
            CommandCapsule.unpack(b"\x00" * 32)
        with pytest.raises(ValueError):
            ResponseCapsule.unpack(b"\x07" + b"\x00" * 31)


class TestDataPath:
    def test_write_read_roundtrip(self):
        bed, target, initiator = make_stack()
        payload = bytes((i * 3) % 256 for i in range(4096))

        def flow(sim):
            req = yield from initiator.io(BlockRequest("write", lba=40,
                                                       data=payload))
            assert req.ok, hex(req.status)
            req = yield from initiator.io(BlockRequest("read", lba=40,
                                                       nblocks=8))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok
        assert req.result == payload
        assert bed.nvme.namespaces[1].read_blocks(40, 8) == payload
        assert target.commands_served == 2

    def test_large_write_uses_rdma_read_pull(self):
        bed, target, initiator = make_stack()
        payload = bytes((i * 11) % 256 for i in range(32 * 1024))

        def flow(sim):
            req = yield from initiator.io(BlockRequest("write", lba=0,
                                                       data=payload))
            assert req.ok
            req = yield from initiator.io(BlockRequest("read", lba=0,
                                                       nblocks=64))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok and req.result == payload
        assert bed.target_nic.rdma_reads >= 1   # the pull happened

    def test_flush(self):
        bed, target, initiator = make_stack()

        def flow(sim):
            req = yield from initiator.io(BlockRequest("flush"))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok

    def test_queue_depth_pipelining(self):
        bed, target, initiator = make_stack(queue_depth=16)

        def flow(sim):
            start = sim.now
            events = [initiator.submit(BlockRequest("read", lba=i * 8,
                                                    nblocks=8))
                      for i in range(32)]
            yield sim.all_of(events)
            return sim.now - start

        elapsed = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert initiator.completed == 32
        # sequential would be ~ 32 * 19us = 615us
        assert elapsed < 350_000

    def test_latency_in_nvmeof_band(self):
        """4 KiB QD1 read over the fabric: local-linux + ~7.7 us."""
        bed, target, initiator = make_stack()

        def flow(sim):
            lat = []
            for i in range(150):
                req = yield from initiator.io(
                    BlockRequest("read", lba=i * 8, nblocks=8))
                assert req.ok
                lat.append(req.latency_ns)
            return np.array(lat)

        lat = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        # stock local min is ~11.9us; the paper's delta is 7.7us.
        assert 17_000 < lat.min() < 22_000
        assert np.median(lat) < 24_000
