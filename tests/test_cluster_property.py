"""Property tests for the cluster address math and placement.

The layout is the load-bearing wall of the cluster block store: if
``locate``/``inverse`` disagree, two volumes (or two replicas) silently
alias each other's blocks.  These tests drive randomized geometries —
chunk sizes, device counts, replica counts, volume sizes — through the
round-trip, coverage and no-overlap properties, and pin the scheduler
to its deterministic least-loaded contract.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (LayoutError, PlacementError,
                           PlacementScheduler, VolumeLayout)

#: Geometry generator: small enough to enumerate exhaustively, wide
#: enough to hit every modular-arithmetic corner (width 1, partial
#: final chunks, partial final rows, replicas == width).
geometries = st.integers(1, 5).flatmap(lambda width: st.tuples(
    st.just(width),
    st.integers(1, width),              # replicas <= width
    st.integers(1, 9),                  # stripe_lbas
    st.integers(1, 180),                # capacity_lbas
))


def make_layout(geom) -> VolumeLayout:
    width, replicas, stripe, capacity = geom
    return VolumeLayout(name="t", devices=tuple(range(10, 10 + width)),
                        stripe_lbas=stripe, capacity_lbas=capacity,
                        replicas=replicas)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(geometries, st.data())
    def test_locate_inverse_round_trip(self, geom, data):
        layout = make_layout(geom)
        lba = data.draw(st.integers(0, layout.capacity_lbas - 1))
        replica = data.draw(st.integers(0, layout.replicas - 1))
        member, member_lba = layout.locate(lba, replica)
        assert 0 <= member < layout.width
        assert 0 <= member_lba < layout.member_lbas
        assert layout.inverse(member, member_lba) == (lba, replica)

    @settings(max_examples=100, deadline=None)
    @given(geometries)
    def test_replicas_of_a_chunk_land_on_distinct_members(self, geom):
        layout = make_layout(geom)
        for chunk in range(layout.nchunks):
            lba = chunk * layout.stripe_lbas
            members = {layout.locate(lba, r)[0]
                       for r in range(layout.replicas)}
            assert len(members) == layout.replicas


class TestCoverage:
    """Exhaustive map over the whole (small) volume: dense, no overlap."""

    @settings(max_examples=100, deadline=None)
    @given(geometries)
    def test_no_overlap_and_full_coverage(self, geom):
        layout = make_layout(geom)
        seen: dict[tuple[int, int], tuple[int, int]] = {}
        for lba in range(layout.capacity_lbas):
            for replica in range(layout.replicas):
                addr = layout.locate(lba, replica)
                assert addr not in seen, (
                    f"{addr} holds both {seen[addr]} and "
                    f"{(lba, replica)}")
                seen[addr] = (lba, replica)
        # Exactly capacity x replicas member blocks are used ...
        assert len(seen) == layout.capacity_lbas * layout.replicas
        # ... and every other address in the footprint is the unused
        # tail of the final row: inverse() rejects it, nothing else.
        for member in range(layout.width):
            for member_lba in range(layout.member_lbas):
                if (member, member_lba) in seen:
                    lba, replica = layout.inverse(member, member_lba)
                    assert seen[(member, member_lba)] == (lba, replica)
                else:
                    with pytest.raises(LayoutError):
                        layout.inverse(member, member_lba)

    @settings(max_examples=100, deadline=None)
    @given(geometries, st.data())
    def test_split_partitions_the_extent(self, geom, data):
        layout = make_layout(geom)
        lba = data.draw(st.integers(0, layout.capacity_lbas - 1))
        nblocks = data.draw(
            st.integers(1, layout.capacity_lbas - lba))
        extents = layout.split(lba, nblocks)
        # Contiguous, in order, covering exactly [lba, lba+nblocks).
        offset = 0
        for extent in extents:
            assert extent.offset_blocks == offset
            assert len(extent.targets) == layout.replicas
            # The whole extent sits inside one chunk on each replica.
            for replica, (member, member_lba) in \
                    enumerate(extent.targets):
                first = layout.locate(lba + offset, replica)
                last = layout.locate(lba + offset + extent.nblocks - 1,
                                     replica)
                assert first == (member, member_lba)
                assert last == (member, member_lba + extent.nblocks - 1)
            offset += extent.nblocks
        assert offset == nblocks

    @settings(max_examples=100, deadline=None)
    @given(st.integers(2, 5), st.integers(1, 9), st.integers(2, 120),
           st.data())
    def test_unreplicated_layout_matches_stripe_math(self, width,
                                                     stripe, capacity,
                                                     data):
        """R=1 degenerates to driver/stripe.py's RAID-0 arithmetic."""
        layout = VolumeLayout(name="t", devices=tuple(range(width)),
                              stripe_lbas=stripe, capacity_lbas=capacity)
        lba = data.draw(st.integers(0, capacity - 1))
        stripe_index, within = divmod(lba, stripe)
        expect = (stripe_index % width,
                  (stripe_index // width) * stripe + within)
        assert layout.locate(lba) == expect


class TestLayoutValidation:
    def test_rejects_bad_geometry(self):
        with pytest.raises(LayoutError):
            VolumeLayout("t", (), 8, 100)
        with pytest.raises(LayoutError):
            VolumeLayout("t", (1, 1), 8, 100)
        with pytest.raises(LayoutError):
            VolumeLayout("t", (1, 2), 0, 100)
        with pytest.raises(LayoutError):
            VolumeLayout("t", (1, 2), 8, 0)
        with pytest.raises(LayoutError):
            VolumeLayout("t", (1, 2), 8, 100, replicas=3)

    def test_rejects_out_of_range_addresses(self):
        layout = VolumeLayout("t", (1, 2), 8, 100, replicas=2)
        with pytest.raises(LayoutError):
            layout.locate(100)
        with pytest.raises(LayoutError):
            layout.locate(0, replica=2)
        with pytest.raises(LayoutError):
            layout.inverse(2, 0)
        with pytest.raises(LayoutError):
            layout.inverse(0, layout.member_lbas)
        with pytest.raises(LayoutError):
            layout.split(96, 8)      # runs past the 100-LBA end


class TestPlacementScheduler:
    def _scheduler(self, capacities) -> PlacementScheduler:
        sched = PlacementScheduler()
        for device_id, capacity in capacities.items():
            sched.register(device_id, capacity)
        return sched

    def test_least_loaded_wins_with_id_tie_break(self):
        sched = self._scheduler({3: 1000, 1: 1000, 2: 1000})
        assert sched.place(1, 100) == (1,)      # all even: lowest id
        assert sched.place(1, 100) == (2,)
        assert sched.place(1, 100) == (3,)
        assert sched.place(2, 100) == (1, 2)    # round comes back
        # Device 3 now has the least allocated (100 vs 200).
        assert sched.place(1, 50) == (3,)

    def test_load_is_fractional_not_absolute(self):
        sched = self._scheduler({1: 1000, 2: 100})
        sched.place(1, 80)                       # -> device 1 (tie: id)
        # 80/1000 = 8% on device 1 vs 0% on device 2.
        assert sched.place(1, 10) == (2,)
        # 10/100 = 10% on device 2 > 8% on device 1.
        assert sched.place(1, 10) == (1,)

    def test_rejects_when_no_fit(self):
        sched = self._scheduler({1: 100, 2: 100})
        with pytest.raises(PlacementError):
            sched.place(1, 101)
        with pytest.raises(PlacementError):
            sched.place(3, 10)
        assert sched.rejections == 2
        sched.place(2, 100)                      # exact fit still works
        with pytest.raises(PlacementError):
            sched.place(1, 1)                    # now truly full

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(1, 50), min_size=1, max_size=20),
           st.integers(2, 8))
    def test_placement_is_balanced_for_equal_volumes(self, sizes,
                                                     n_devices):
        """Equal backends + equal volumes => counts differ by <= 1."""
        per_volume = 10
        capacity = per_volume * len(sizes) * 2
        sched = self._scheduler({d: capacity
                                 for d in range(n_devices)})
        for _ in sizes:
            sched.place(1, per_volume)
        counts = [b.volumes for b in sched.backends]
        assert max(counts) - min(counts) <= 1

    def test_release_returns_the_reservation(self):
        sched = self._scheduler({1: 100})
        layout = VolumeLayout("v", (1,), 10, 50)
        sched.place(1, layout.member_lbas)
        sched.release(layout)
        backend = sched.backends[0]
        assert backend.allocated_lbas == 0 and backend.volumes == 0
