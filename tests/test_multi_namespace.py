"""Multi-namespace support: attach, identify list, isolated I/O."""

import pytest

from repro.config import SimulationConfig
from repro.driver import BlockRequest, SpdkLocalDriver
from repro.nvme import AdminOpcode, IoOpcode, SubmissionEntry
from repro.nvme.constants import CNS_ACTIVE_NS_LIST
from repro.scenarios.testbed import LocalTestbed


def make_bed(extra_namespaces=2, seed=260):
    bed = LocalTestbed(seed=seed)
    nsids = [1]
    for _ in range(extra_namespaces):
        nsids.append(bed.nvme.add_namespace(capacity_lbas=1_000_000))
    drv = SpdkLocalDriver(bed.sim, bed.fabric, bed.host,
                          bed.nvme.bars[0].base, bed.config)
    bed.sim.run(until=bed.sim.process(drv.start()))
    return bed, drv, nsids


class TestNamespaceManagement:
    def test_nsid_assignment(self):
        bed, drv, nsids = make_bed()
        assert nsids == [1, 2, 3]
        assert set(bed.nvme.namespaces) == {1, 2, 3}

    def test_identify_controller_reports_count(self):
        bed, drv, nsids = make_bed()

        def flow(sim):
            ident = yield from drv.admin.identify_controller()
            return ident

        ident = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert ident.nn == 3

    def test_active_namespace_list(self):
        bed, drv, nsids = make_bed()

        def flow(sim):
            cpu, dev = drv.admin.pool.alloc(4096)
            yield from drv.admin.submit_ok(SubmissionEntry(
                opcode=AdminOpcode.IDENTIFY, nsid=0, prp1=dev,
                cdw10=CNS_ACTIVE_NS_LIST))
            data = bed.host.memory.read(cpu, 4096)
            drv.admin.pool.free(cpu)
            return [int.from_bytes(data[i * 4:(i + 1) * 4], "little")
                    for i in range(4)]

        ids = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert ids == [1, 2, 3, 0]

    def test_active_list_respects_floor_nsid(self):
        bed, drv, nsids = make_bed()

        def flow(sim):
            cpu, dev = drv.admin.pool.alloc(4096)
            yield from drv.admin.submit_ok(SubmissionEntry(
                opcode=AdminOpcode.IDENTIFY, nsid=1, prp1=dev,
                cdw10=CNS_ACTIVE_NS_LIST))
            data = bed.host.memory.read(cpu, 4096)
            drv.admin.pool.free(cpu)
            return [int.from_bytes(data[i * 4:(i + 1) * 4], "little")
                    for i in range(3)]

        ids = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert ids == [2, 3, 0]

    def test_identify_second_namespace_geometry(self):
        bed, drv, nsids = make_bed()

        def flow(sim):
            ident = yield from drv.admin.identify_namespace(2)
            return ident

        ident = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert ident.nsze == 1_000_000


class TestNamespaceIsolation:
    def test_namespaces_hold_independent_data(self):
        """Raw commands to ns1 and ns2 at the same LBA do not clash."""
        bed, drv, nsids = make_bed()
        ns1 = bed.nvme.namespaces[1]
        ns2 = bed.nvme.namespaces[2]
        ns1.write_blocks(0, b"\x11" * 512)
        ns2.write_blocks(0, b"\x22" * 512)
        assert ns1.read_blocks(0, 1) == b"\x11" * 512
        assert ns2.read_blocks(0, 1) == b"\x22" * 512

    def test_io_to_second_namespace_via_queue(self):
        """Submit raw NVMe I/O against nsid=2 through the real queue."""
        bed, drv, nsids = make_bed()

        def flow(sim):
            # write via bare SQE to ns2
            alloc = bed.host.alloc_dma(8192)
            buf = alloc + 4096
            bed.host.memory.write(buf, b"\x77" * 4096)
            sqe = SubmissionEntry(opcode=IoOpcode.WRITE, nsid=2,
                                  prp1=buf)
            sqe.prp2 = 0
            sqe.slba = 16
            sqe.nlb = 7
            from repro.sim import Event
            done = Event(sim)
            drv._cid = (drv._cid + 1) % 0x10000
            sqe.cid = drv._cid
            drv._inflight[sqe.cid] = done
            slot = drv.sq.advance_tail()
            bed.host.memory.write(drv.sq.slot_addr(slot), sqe.pack())
            from repro.nvme import sq_doorbell_offset
            bed.fabric.post_write(
                bed.host.rc, bed.host,
                drv.bar + sq_doorbell_offset(drv.qid),
                drv.sq.tail.to_bytes(4, "little"))
            cqe = yield done
            return cqe

        cqe = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert cqe.ok
        assert bed.nvme.namespaces[2].read_blocks(16, 8) == b"\x77" * 4096
        # ns1 untouched at that LBA
        assert bed.nvme.namespaces[1].read_blocks(16, 8) == bytes(4096)
