"""A minimal bare-metal NVMe "driver" used by controller tests.

Deliberately independent of :mod:`repro.driver` so controller behaviour
is validated without trusting the code under test elsewhere.  It drives
the controller exactly as hardware would be driven: MMIO register writes
through the fabric, SQEs placed in queue memory, doorbell rings, and CQ
polling on memory watchpoints.
"""

from __future__ import annotations

from repro.config import NvmeConfig, PcieConfig
from repro.nvme import (AdminOpcode, CompletionEntry, CompletionQueueState,
                        IoOpcode, NvmeController, SubmissionEntry,
                        SubmissionQueueState, cq_doorbell_offset,
                        sq_doorbell_offset)
from repro.nvme.constants import (CNS_CONTROLLER, CNS_NAMESPACE, REG_ACQ,
                                  REG_AQA, REG_ASQ, REG_CC, REG_CSTS)
from repro.pcie import Cluster, Fabric
from repro.sim import Simulator
from repro.units import MiB


def build_single_host(seed=17, nvme_config=None, media=None):
    """One host with an NVMe endpoint on a Gen3 x4 link."""
    sim = Simulator(seed=seed)
    pcfg = PcieConfig()
    cluster = Cluster(sim, pcfg)
    host = cluster.add_host("host", dram_size=256 * MiB)
    dev_node = cluster.add_endpoint("host.nvme", host=host)
    cluster.connect(host.rc, dev_node, bandwidth=3.2)
    fabric = Fabric(sim, cluster, pcfg)
    ctrl = NvmeController(sim, "nvme0", nvme_config or NvmeConfig(),
                          media=media)
    ctrl.install(host, dev_node, fabric)
    return sim, cluster, fabric, host, ctrl


class BareMetalDriver:
    """Synchronous-generator driver for one host + one controller."""

    def __init__(self, sim, fabric, host, ctrl, qsize=64):
        self.sim = sim
        self.fabric = fabric
        self.host = host
        self.ctrl = ctrl
        self.bar = ctrl.bars[0].base
        self.qsize = qsize
        self.asq = None
        self.acq = None
        self.io_sq = None
        self.io_cq = None
        self._cid = 0

    # -- low-level ---------------------------------------------------------

    def reg_write(self, offset, value, width=4):
        self.fabric.post_write(self.host.rc, self.host, self.bar + offset,
                               value.to_bytes(width, "little"))

    def reg_read(self, offset, width=4):
        data = yield from self.fabric.read(self.host.rc, self.host,
                                           self.bar + offset, width)
        return int.from_bytes(data, "little")

    def next_cid(self):
        self._cid = (self._cid + 1) % 0x10000
        return self._cid

    # -- bring-up ------------------------------------------------------------

    def enable(self):
        asq_mem = self.host.alloc_dma(self.qsize * 64)
        acq_mem = self.host.alloc_dma(self.qsize * 16)
        self.asq = SubmissionQueueState(qid=0, base_addr=asq_mem,
                                        entries=self.qsize)
        self.acq = CompletionQueueState(qid=0, base_addr=acq_mem,
                                        entries=self.qsize)
        self.reg_write(REG_AQA,
                       ((self.qsize - 1) << 16) | (self.qsize - 1))
        self.reg_write(REG_ASQ, asq_mem, width=8)
        self.reg_write(REG_ACQ, acq_mem, width=8)
        self.reg_write(REG_CC, (6 << 16) | (4 << 20) | 1)
        while True:
            csts = yield from self.reg_read(REG_CSTS)
            if csts & 1:
                return
            yield self.sim.timeout(100_000)

    # -- command submission ---------------------------------------------------

    def submit(self, sq, sqe):
        """Write the SQE into queue memory and ring the doorbell."""
        slot = sq.advance_tail()
        self.host.memory.write(sq.slot_addr(slot), sqe.pack())
        self.reg_write(sq_doorbell_offset(sq.qid), sq.tail)

    def wait_cqe(self, cq):
        """Poll CQ memory for the next completion (phase-tag protocol)."""
        wp = self.host.memory.watch(cq.base_addr,
                                    cq.entries * cq.entry_size)
        try:
            while True:
                raw = self.host.memory.read(cq.slot_addr(cq.head), 16)
                cqe = CompletionEntry.unpack(raw)
                if cqe.phase == cq.consumer_phase():
                    cq.consume()
                    self.reg_write(cq_doorbell_offset(cq.qid), cq.head)
                    return cqe
                yield wp.signal.wait()
        finally:
            self.host.memory.unwatch(wp)

    def admin(self, sqe):
        self.submit(self.asq, sqe)
        cqe = yield from self.wait_cqe(self.acq)
        self.asq.head = cqe.sq_head   # controller reports consumed slots
        return cqe

    # -- admin helpers -----------------------------------------------------------

    def identify_controller(self):
        buf = self.host.alloc_dma(4096)
        cqe = yield from self.admin(SubmissionEntry(
            opcode=AdminOpcode.IDENTIFY, cid=self.next_cid(),
            prp1=buf, cdw10=CNS_CONTROLLER))
        data = self.host.memory.read(buf, 4096)
        return cqe, data

    def identify_namespace(self, nsid=1):
        buf = self.host.alloc_dma(4096)
        cqe = yield from self.admin(SubmissionEntry(
            opcode=AdminOpcode.IDENTIFY, cid=self.next_cid(), nsid=nsid,
            prp1=buf, cdw10=CNS_NAMESPACE))
        data = self.host.memory.read(buf, 4096)
        return cqe, data

    def create_io_queues(self, qid=1, entries=64, interrupts=False,
                         vector=0):
        cq_mem = self.host.alloc_dma(entries * 16)
        sq_mem = self.host.alloc_dma(entries * 64)
        cqe = yield from self.admin(SubmissionEntry(
            opcode=AdminOpcode.CREATE_IO_CQ, cid=self.next_cid(),
            prp1=cq_mem, cdw10=((entries - 1) << 16) | qid,
            cdw11=(vector << 16) | (2 if interrupts else 0) | 1))
        assert cqe.ok, f"create cq failed: {cqe.status:#x}"
        cqe = yield from self.admin(SubmissionEntry(
            opcode=AdminOpcode.CREATE_IO_SQ, cid=self.next_cid(),
            prp1=sq_mem, cdw10=((entries - 1) << 16) | qid,
            cdw11=(qid << 16) | 1))
        assert cqe.ok, f"create sq failed: {cqe.status:#x}"
        self.io_sq = SubmissionQueueState(qid=qid, base_addr=sq_mem,
                                          entries=entries, cqid=qid)
        self.io_cq = CompletionQueueState(qid=qid, base_addr=cq_mem,
                                          entries=entries)

    # -- I/O -------------------------------------------------------------------

    def io(self, opcode, slba, data=None, nblocks=None):
        """One blocking I/O through qid 1 with a local DMA buffer."""
        lba = 512
        if opcode == IoOpcode.WRITE:
            assert data is not None
            nblocks = len(data) // lba
            buf = self.host.alloc_dma(len(data))
            self.host.memory.write(buf, data)
            nbytes = len(data)
        else:
            assert nblocks is not None
            nbytes = nblocks * lba
            buf = self.host.alloc_dma(nbytes)
        sqe = SubmissionEntry(opcode=opcode, cid=self.next_cid(), nsid=1,
                              prp1=buf)
        if nbytes > 4096:
            sqe.prp2 = buf + 4096   # up to 2 pages in this helper
        sqe.slba = slba
        sqe.nlb = nblocks - 1
        self.submit(self.io_sq, sqe)
        cqe = yield from self.wait_cqe(self.io_cq)
        self.io_sq.head = cqe.sq_head   # controller reports consumed slots
        out = self.host.memory.read(buf, nbytes)
        return cqe, out
