"""Edge cases in the simulation kernel and transport layers that the
main suites don't reach."""

import pytest

from repro.rdma import (CompletionQueue, ProtectionDomain, QueuePair,
                        RecvWR, SendWR, WcStatus, WrOpcode)
from repro.scenarios.testbed import RdmaTestbed
from repro.sim import (AllOf, AnyOf, Interrupt, Resource, Simulator,
                       Store)


class TestConditionFailures:
    def test_allof_propagates_failure(self):
        sim = Simulator(seed=1)

        def bad(sim):
            yield sim.timeout(10)
            raise ValueError("inner failure")

        def good(sim):
            yield sim.timeout(100)

        caught = []

        def waiter(sim):
            try:
                yield sim.all_of([sim.process(bad(sim)),
                                  sim.process(good(sim))])
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(waiter(sim))
        sim.run()
        assert caught == ["inner failure"]

    def test_anyof_propagates_failure(self):
        sim = Simulator(seed=2)

        def bad(sim):
            yield sim.timeout(5)
            raise KeyError("fast failure")

        caught = []

        def waiter(sim):
            try:
                yield sim.any_of([sim.process(bad(sim)),
                                  sim.timeout(1000)])
            except KeyError:
                caught.append(True)

        sim.process(waiter(sim))
        sim.run()
        assert caught == [True]


class TestInterruptWithResources:
    def test_interrupted_waiter_can_cancel_request(self):
        sim = Simulator(seed=3)
        res = Resource(sim, capacity=1)
        holder = res.request()   # grabs it instantly
        progressed = []

        def waiter(sim):
            req = res.request()
            try:
                yield req
            except Interrupt:
                res.release(req)   # cancel the queued request
                progressed.append("cancelled")
                return
            progressed.append("granted")

        victim = sim.process(waiter(sim))

        def interrupter(sim):
            yield sim.timeout(50)
            victim.interrupt()

        sim.process(interrupter(sim))
        sim.run()
        assert progressed == ["cancelled"]
        assert res.queued == 0
        res.release(holder)
        assert res.count == 0

    def test_store_getter_interrupted(self):
        sim = Simulator(seed=4)
        store = Store(sim)
        outcome = []

        def getter(sim):
            try:
                yield store.get()
            except Interrupt:
                outcome.append("interrupted")

        victim = sim.process(getter(sim))

        def interrupter(sim):
            yield sim.timeout(10)
            victim.interrupt()

        sim.process(interrupter(sim))
        sim.run()
        assert outcome == ["interrupted"]


class TestRdmaEdges:
    def _pair(self, bed):
        pd_t = ProtectionDomain(bed.target_host)
        pd_i = ProtectionDomain(bed.initiator_host)
        qp_t = QueuePair(bed.target_nic, pd_t,
                         CompletionQueue(bed.sim, "ts"),
                         CompletionQueue(bed.sim, "tr"), name="t")
        qp_i = QueuePair(bed.initiator_nic, pd_i,
                         CompletionQueue(bed.sim, "is"),
                         CompletionQueue(bed.sim, "ir"), name="i")
        qp_i.connect(qp_t)
        return pd_t, pd_i, qp_t, qp_i

    def test_recv_buffer_too_small(self):
        bed = RdmaTestbed(seed=5)
        pd_t, pd_i, qp_t, qp_i = self._pair(bed)
        dst = bed.target_host.alloc_dma(4096)
        qp_t.post_recv(RecvWR(wr_id=1, addr=dst, length=8))
        qp_i.post_send(SendWR(wr_id=2, opcode=WrOpcode.SEND,
                              inline_data=b"x" * 64, length=64))
        bed.sim.run(until=bed.sim.now + 1_000_000)
        wcs = qp_i.send_cq.poll()
        assert wcs and wcs[0].status is WcStatus.LOCAL_ERROR

    def test_double_connect_rejected(self):
        from repro.rdma import RdmaError
        bed = RdmaTestbed(seed=6)
        pd_t, pd_i, qp_t, qp_i = self._pair(bed)
        qp_x = QueuePair(bed.initiator_nic, pd_i,
                         CompletionQueue(bed.sim, "xs"),
                         CompletionQueue(bed.sim, "xr"))
        with pytest.raises(RdmaError):
            qp_x.connect(qp_t)

    def test_same_qp_ordering_preserved_under_pipelining(self):
        """RDMA_WRITE then SEND on one QP: data must land before the
        receive completion is visible, even though the NIC pipelines."""
        bed = RdmaTestbed(seed=7)
        pd_t, pd_i, qp_t, qp_i = self._pair(bed)
        data_dst = bed.target_host.alloc_dma(8192)
        msg_dst = bed.target_host.alloc_dma(4096)
        src = bed.initiator_host.alloc_dma(8192)
        pd_i.register(src, 8192)
        mr = pd_t.register(data_dst, 8192)
        bed.initiator_host.memory.write(src, b"D" * 8192)
        qp_t.post_recv(RecvWR(wr_id=1, addr=msg_dst, length=4096))
        observed = []

        def on_recv(sim):
            yield qp_t.recv_cq.signal.wait()
            # At the instant the SEND completes, the RDMA_WRITE data
            # must already be fully visible.
            observed.append(
                bed.target_host.memory.read(data_dst, 8192))

        bed.sim.process(on_recv(bed.sim))
        qp_i.post_send(SendWR(wr_id=2, opcode=WrOpcode.RDMA_WRITE,
                              local_addr=src, length=8192,
                              remote_addr=data_dst, rkey=mr.rkey))
        qp_i.post_send(SendWR(wr_id=3, opcode=WrOpcode.SEND,
                              inline_data=b"done", length=4))
        bed.sim.run(until=bed.sim.now + 2_000_000)
        assert observed
        assert observed[0] == b"D" * 8192


class TestNvmeofEdges:
    def test_slot_exhaustion_returns_error_capsule(self):
        """More outstanding commands than the negotiated depth: the
        target answers with an error response instead of dying."""
        from repro.driver.blockdev import BlockRequest
        from repro.nvmeof import NvmeofInitiator, SpdkTarget

        bed = RdmaTestbed(seed=8)
        target = SpdkTarget(bed.sim, bed.fabric, bed.target_host,
                            bed.nvme.bars[0].base, bed.target_nic,
                            bed.config)
        bed.sim.run(until=bed.sim.process(target.start()))
        initiator = NvmeofInitiator(bed.sim, bed.initiator_host,
                                    bed.initiator_nic, bed.config,
                                    queue_depth=8)
        bed.sim.run(until=bed.sim.process(initiator.connect(target)))
        # Starve the connection's data slots (keep its recv buffers):
        # commands beyond two outstanding must be refused, not wedged.
        connection = target.connections[0]
        del connection.slots[2:]

        def flow(sim):
            events = [initiator.submit(BlockRequest("read", lba=i * 8,
                                                    nblocks=8))
                      for i in range(8)]
            outcome = yield sim.all_of(events)
            return list(outcome.values())

        requests = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        statuses = [r.status for r in requests]
        assert statuses.count(0) >= 2          # some succeed
        assert any(s != 0 for s in statuses)   # overflow rejected
