"""Integration tests driving the NVMe controller bare-metal through the
fabric: bring-up, admin commands, I/O, errors, interrupts."""

import pytest

from repro.config import NvmeConfig
from repro.nvme import (AdminOpcode, IdentifyController, IdentifyNamespace,
                        IoOpcode, Status, SubmissionEntry,
                        sq_doorbell_offset)
from repro.nvme.constants import FEAT_NUM_QUEUES, REG_CSTS
from repro.nvme.registers import MSIX_TABLE_OFFSET

from .nvme_harness import BareMetalDriver, build_single_host


def run_driver(coro_factory, seed=17, nvme_config=None):
    sim, cluster, fabric, host, ctrl = build_single_host(
        seed=seed, nvme_config=nvme_config)
    drv = BareMetalDriver(sim, fabric, host, ctrl)
    result = {}

    def main(sim):
        yield from drv.enable()
        value = yield from coro_factory(drv, ctrl)
        result["value"] = value

    proc = sim.process(main(sim))
    sim.run(until=proc)
    return result["value"], ctrl, sim


class TestBringUp:
    def test_controller_becomes_ready(self):
        def scenario(drv, ctrl):
            csts = yield from drv.reg_read(REG_CSTS)
            return csts

        csts, ctrl, sim = run_driver(scenario)
        assert csts & 1
        assert 0 in ctrl.sqs and 0 in ctrl.cqs

    def test_register_reads(self):
        def scenario(drv, ctrl):
            cap = yield from drv.reg_read(0x00, width=8)
            vs = yield from drv.reg_read(0x08)
            return cap, vs

        (cap, vs), ctrl, sim = run_driver(scenario)
        assert cap & 0xFFFF == 1023          # MQES for 1024-entry queues
        assert vs == (1 << 16) | (3 << 8)    # NVMe 1.3

    def test_disable_resets(self):
        def scenario(drv, ctrl):
            drv.reg_write(0x14, 0)           # clear CC.EN
            yield drv.sim.timeout(10_000)
            csts = yield from drv.reg_read(REG_CSTS)
            return csts

        csts, ctrl, sim = run_driver(scenario)
        assert not csts & 1
        assert not ctrl.sqs and not ctrl.cqs


class TestAdminCommands:
    def test_identify_controller(self):
        def scenario(drv, ctrl):
            cqe, data = yield from drv.identify_controller()
            return cqe, data

        (cqe, data), ctrl, sim = run_driver(scenario)
        assert cqe.ok
        ident = IdentifyController.unpack(data)
        assert "Optane" in ident.model
        assert ident.nn == 1

    def test_identify_namespace(self):
        def scenario(drv, ctrl):
            cqe, data = yield from drv.identify_namespace(1)
            return cqe, data

        (cqe, data), ctrl, sim = run_driver(scenario)
        assert cqe.ok
        ident = IdentifyNamespace.unpack(data)
        assert ident.nsze == ctrl.namespaces[1].capacity_lbas
        assert ident.lba_bytes == 512

    def test_identify_bad_namespace(self):
        def scenario(drv, ctrl):
            cqe, _ = yield from drv.identify_namespace(42)
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.status == Status.INVALID_FIELD

    def test_create_delete_io_queues(self):
        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1)
            assert ctrl.io_queue_count == 1
            cqe = yield from drv.admin(SubmissionEntry(
                opcode=AdminOpcode.DELETE_IO_SQ, cid=drv.next_cid(),
                cdw10=1))
            assert cqe.ok
            cqe = yield from drv.admin(SubmissionEntry(
                opcode=AdminOpcode.DELETE_IO_CQ, cid=drv.next_cid(),
                cdw10=1))
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.ok
        assert ctrl.io_queue_count == 0
        assert 1 not in ctrl.cqs

    def test_delete_cq_with_live_sq_rejected(self):
        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1)
            cqe = yield from drv.admin(SubmissionEntry(
                opcode=AdminOpcode.DELETE_IO_CQ, cid=drv.next_cid(),
                cdw10=1))
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.status == Status.INVALID_QUEUE_ID

    def test_create_sq_without_cq_rejected(self):
        def scenario(drv, ctrl):
            sq_mem = drv.host.alloc_dma(64 * 64)
            cqe = yield from drv.admin(SubmissionEntry(
                opcode=AdminOpcode.CREATE_IO_SQ, cid=drv.next_cid(),
                prp1=sq_mem, cdw10=(63 << 16) | 1, cdw11=(9 << 16) | 1))
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.status == Status.INVALID_QUEUE_ID

    def test_duplicate_qid_rejected(self):
        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1)
            cq_mem = drv.host.alloc_dma(64 * 16)
            cqe = yield from drv.admin(SubmissionEntry(
                opcode=AdminOpcode.CREATE_IO_CQ, cid=drv.next_cid(),
                prp1=cq_mem, cdw10=(63 << 16) | 1, cdw11=1))
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.status == Status.INVALID_QUEUE_ID

    def test_oversized_queue_rejected(self):
        def scenario(drv, ctrl):
            cq_mem = drv.host.alloc_dma(4096)
            cqe = yield from drv.admin(SubmissionEntry(
                opcode=AdminOpcode.CREATE_IO_CQ, cid=drv.next_cid(),
                prp1=cq_mem, cdw10=(2047 << 16) | 1, cdw11=1))
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.status == Status.INVALID_QUEUE_SIZE

    def test_get_features_num_queues(self):
        def scenario(drv, ctrl):
            cqe = yield from drv.admin(SubmissionEntry(
                opcode=AdminOpcode.GET_FEATURES, cid=drv.next_cid(),
                cdw10=FEAT_NUM_QUEUES))
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.ok
        # 32 QPs - admin = 31 I/O queues; 0-based in the result
        assert (cqe.result & 0xFFFF) == 30
        assert (cqe.result >> 16) == 30

    def test_unknown_admin_opcode(self):
        def scenario(drv, ctrl):
            cqe = yield from drv.admin(SubmissionEntry(
                opcode=0x7F, cid=drv.next_cid()))
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.status == Status.INVALID_OPCODE


class TestIo:
    def test_write_then_read_roundtrip(self):
        payload = bytes((i * 7) % 256 for i in range(4096))

        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1)
            wcqe, _ = yield from drv.io(IoOpcode.WRITE, slba=100,
                                        data=payload)
            assert wcqe.ok
            rcqe, data = yield from drv.io(IoOpcode.READ, slba=100,
                                           nblocks=8)
            return rcqe, data

        (rcqe, data), ctrl, sim = run_driver(scenario)
        assert rcqe.ok
        assert data == payload
        assert ctrl.namespaces[1].read_blocks(100, 8) == payload

    def test_read_unwritten_returns_zeros(self):
        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1)
            cqe, data = yield from drv.io(IoOpcode.READ, slba=0, nblocks=8)
            return cqe, data

        (cqe, data), ctrl, sim = run_driver(scenario)
        assert cqe.ok and data == bytes(4096)

    def test_flush(self):
        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1)
            sqe = SubmissionEntry(opcode=IoOpcode.FLUSH,
                                  cid=drv.next_cid(), nsid=1)
            drv.submit(drv.io_sq, sqe)
            cqe = yield from drv.wait_cqe(drv.io_cq)
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.ok

    def test_lba_out_of_range(self):
        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1)
            sqe = SubmissionEntry(opcode=IoOpcode.READ, cid=drv.next_cid(),
                                  nsid=1, prp1=drv.host.alloc_dma(4096))
            sqe.slba = ctrl.namespaces[1].capacity_lbas
            sqe.nlb = 0
            drv.submit(drv.io_sq, sqe)
            cqe = yield from drv.wait_cqe(drv.io_cq)
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.status == Status.LBA_OUT_OF_RANGE

    def test_bad_nsid(self):
        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1)
            sqe = SubmissionEntry(opcode=IoOpcode.READ, cid=drv.next_cid(),
                                  nsid=9, prp1=drv.host.alloc_dma(4096))
            sqe.nlb = 0
            drv.submit(drv.io_sq, sqe)
            cqe = yield from drv.wait_cqe(drv.io_cq)
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.status == Status.INVALID_FIELD

    def test_unknown_io_opcode(self):
        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1)
            sqe = SubmissionEntry(opcode=0x55, cid=drv.next_cid(), nsid=1)
            drv.submit(drv.io_sq, sqe)
            cqe = yield from drv.wait_cqe(drv.io_cq)
            return cqe

        cqe, ctrl, sim = run_driver(scenario)
        assert cqe.status == Status.INVALID_OPCODE

    def test_io_latency_in_expected_band(self):
        """4 KiB QD1 read through bare metal polling: media (~8 us) +
        fabric + controller overheads. Must land well under the stock
        kernel's ~11 us but above raw media time."""

        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1)
            lat = []
            for i in range(50):
                start = drv.sim.now
                cqe, _ = yield from drv.io(IoOpcode.READ, slba=i * 8,
                                           nblocks=8)
                assert cqe.ok
                lat.append(drv.sim.now - start)
            return lat

        lat, ctrl, sim = run_driver(scenario)
        assert 8_000 < min(lat) < 12_000
        assert max(lat) < 14_000

    def test_multipage_prp_transfer(self):
        """8 KiB I/O uses PRP2 as a second page pointer."""
        payload = bytes((i * 13) % 256 for i in range(8192))

        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1)
            wcqe, _ = yield from drv.io(IoOpcode.WRITE, slba=0,
                                        data=payload)
            rcqe, data = yield from drv.io(IoOpcode.READ, slba=0,
                                           nblocks=16)
            return wcqe, rcqe, data

        (wcqe, rcqe, data), ctrl, sim = run_driver(scenario)
        assert wcqe.ok and rcqe.ok
        assert data == payload

    def test_queue_wraps_and_phase_flips(self):
        """More I/Os than CQ entries force ring wrap + phase flip."""

        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1, entries=8)
            for i in range(25):
                cqe, _ = yield from drv.io(IoOpcode.READ, slba=i,
                                           nblocks=1)
                assert cqe.ok, f"iteration {i}: {cqe.status:#x}"
            return True

        ok, ctrl, sim = run_driver(scenario)
        assert ok
        assert ctrl.commands_completed >= 25


class TestInterrupts:
    def test_msix_fires_on_completion(self):
        def scenario(drv, ctrl):
            # Point MSI-X vector 0 at a DRAM mailbox and unmask it.
            mailbox = drv.host.alloc_dma(4096)
            wp = drv.host.memory.watch(mailbox, 4)
            drv.reg_write(MSIX_TABLE_OFFSET + 0, mailbox & 0xFFFF_FFFF)
            drv.reg_write(MSIX_TABLE_OFFSET + 4, mailbox >> 32)
            drv.reg_write(MSIX_TABLE_OFFSET + 8, 0xCAFE)
            drv.reg_write(MSIX_TABLE_OFFSET + 12, 0)   # unmask
            yield drv.sim.timeout(2_000)
            # Admin CQ has interrupts enabled; fire an admin command.
            fired = []

            def irq_waiter(sim):
                yield wp.signal.wait()
                fired.append(sim.now)

            drv.sim.process(irq_waiter(drv.sim))
            cqe, _ = yield from drv.identify_controller()
            yield drv.sim.timeout(5_000)
            value = drv.host.memory.read_u32(mailbox)
            return fired, value

        (fired, value), ctrl, sim = run_driver(scenario)
        assert fired, "MSI-X write never arrived"
        assert value == 0xCAFE

    def test_masked_vector_does_not_fire(self):
        def scenario(drv, ctrl):
            mailbox = drv.host.alloc_dma(4096)
            drv.reg_write(MSIX_TABLE_OFFSET + 0, mailbox & 0xFFFF_FFFF)
            drv.reg_write(MSIX_TABLE_OFFSET + 8, 0xCAFE)
            # leave masked (default)
            yield drv.sim.timeout(2_000)
            cqe, _ = yield from drv.identify_controller()
            yield drv.sim.timeout(5_000)
            return drv.host.memory.read_u32(mailbox)

        value, ctrl, sim = run_driver(scenario)
        assert value == 0


class TestDoorbellRobustness:
    def test_bogus_doorbell_ignored(self):
        def scenario(drv, ctrl):
            drv.reg_write(sq_doorbell_offset(20), 5)   # queue never made
            yield drv.sim.timeout(5_000)
            return ctrl.bad_doorbells

        bad, ctrl, sim = run_driver(scenario)
        assert bad == 1

    def test_out_of_range_tail_ignored(self):
        def scenario(drv, ctrl):
            yield from drv.create_io_queues(qid=1, entries=8)
            drv.reg_write(sq_doorbell_offset(1), 99)
            yield drv.sim.timeout(5_000)
            return ctrl.bad_doorbells

        bad, ctrl, sim = run_driver(scenario)
        assert bad == 1
