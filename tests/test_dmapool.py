"""DmaPool free/reuse lifecycle: double-free, use-after-free, reuse.

The pool is the memory every queue and bounce buffer is carved from, so
its lifecycle bugs are exactly the ones ShareSan's ``dma-freed-buffer``
detector exists for: a store landing in a freed allocation, the window
between free and reuse, and the hazard clearing on reuse.  The
allocator's own double-free diagnostics must survive the sanitizer
hooks unchanged (the hook observes, the allocator still raises).
"""

from __future__ import annotations

import pytest

from repro.driver.dmapool import DmaPool, local_pool
from repro.pcie.topology import Host
from repro.sanitizer import ShareSan
from repro.sim import Simulator


@pytest.fixture
def host():
    sim = Simulator(seed=3)
    return Host(sim, "h0", dram_size=1 << 24)


def test_alloc_returns_cpu_device_pair_with_constant_offset(host):
    pool = DmaPool(host, cpu_base=host.alloc_dma(1 << 16),
                   device_base=0x8000_0000, size=1 << 16, name="p")
    pairs = [pool.alloc(4096) for _ in range(3)]
    for cpu, dev in pairs:
        assert dev - cpu == pool.device_base - pool.cpu_base
        assert pool.to_device(cpu) == dev
    assert len({cpu for cpu, _ in pairs}) == 3


def test_to_device_rejects_foreign_address(host):
    pool = local_pool(host, 1 << 16)
    with pytest.raises(ValueError, match="outside the pool"):
        pool.to_device(pool.cpu_base - 8)


def test_double_free_raises_without_sanitizer(host):
    pool = local_pool(host, 1 << 16)
    cpu, _ = pool.alloc(4096)
    pool.free(cpu)
    with pytest.raises(ValueError, match="was not allocated here"):
        pool.free(cpu)


def test_double_free_still_raises_with_sanitizer(host):
    ShareSan(host.sim).attach(hosts=[host])
    pool = local_pool(host, 1 << 16)
    cpu, _ = pool.alloc(4096)
    pool.free(cpu)
    with pytest.raises(ValueError, match="was not allocated here"):
        pool.free(cpu)


def test_use_after_free_is_a_finding(host):
    san = ShareSan(host.sim).attach(hosts=[host])
    pool = local_pool(host, 1 << 16)
    cpu, _ = pool.alloc(4096)
    host.memory.write(cpu, b"live")          # in-lifetime store: fine
    assert san.clean
    pool.free(cpu)
    host.memory.write(cpu + 16, b"\xde\xad" * 8)
    assert san.detectors_fired() == {"dma-freed-buffer"}
    assert "freed" in san.findings[0].message


def test_reuse_clears_the_hazard(host):
    san = ShareSan(host.sim).attach(hosts=[host])
    pool = local_pool(host, 1 << 16)
    cpu, _ = pool.alloc(4096)
    pool.free(cpu)
    cpu2, _ = pool.alloc(4096)
    assert cpu2 == cpu                       # range allocator reuses
    host.memory.write(cpu2, b"fresh tenant") # no longer a hazard
    assert san.clean


def test_free_unknown_address_does_not_poison_hazards(host):
    san = ShareSan(host.sim).attach(hosts=[host])
    pool = local_pool(host, 1 << 16)
    cpu, _ = pool.alloc(4096)
    with pytest.raises(ValueError):
        pool.free(cpu + 64)                  # mid-allocation address
    host.memory.write(cpu, b"still live")
    assert san.clean


def test_pool_registers_a_region(host):
    san = ShareSan(host.sim).attach(hosts=[host])
    pool = local_pool(host, 1 << 16)
    regions = [r for r in san.regions if r.kind == "dmapool"]
    assert len(regions) == 1
    assert regions[0].start == pool.cpu_base
    assert regions[0].end == pool.cpu_base + pool.size
    assert regions[0].owner == pool.name
