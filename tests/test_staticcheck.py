"""Framework tests: runner, suppressions, baseline, output, CLI.

Also the acceptance checks from the issue: the live tree is clean, and
deliberately inserting an unseeded ``random.random()`` or a non-posted
read into the distributed client's submit path makes the checker fail.
"""

from __future__ import annotations

import io
import json
import pathlib
import textwrap

import repro
from repro.cli import main as cli_main
from repro.staticcheck import all_rules, baseline, check_file, get_rule
from repro.staticcheck.runner import main as sc_main
from repro.staticcheck.runner import run

PACKAGE_DIR = pathlib.Path(repro.__file__).resolve().parent
CLIENT_PY = PACKAGE_DIR / "driver" / "client.py"


def write_fixture(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


# --- registry ------------------------------------------------------------

def test_at_least_six_rules_registered():
    names = {rule.name for rule in all_rules()}
    assert names >= {
        "no-wallclock", "seeded-rng-only", "no-nonposted-hotpath",
        "doorbell-after-sq-write", "units-discipline",
        "sim-process-yields",
    }
    assert len(names) >= 6


def test_unknown_rule_name_raises():
    try:
        get_rule("definitely-not-a-rule")
    except KeyError as exc:
        assert "known:" in str(exc)
    else:
        raise AssertionError("expected KeyError")


# --- the live tree -------------------------------------------------------

def test_live_tree_is_clean():
    findings, nfiles = run([PACKAGE_DIR])
    assert nfiles > 50
    assert findings == []


def test_inserting_unseeded_random_in_submit_path_fails(tmp_path):
    source = CLIENT_PY.read_text()
    anchor = "part = yield self._parts.get()"
    assert anchor in source
    mutated = source.replace(
        anchor,
        "import random\n        jitter = random.random()\n        "
        + anchor)
    path = write_fixture(tmp_path, "repro/driver/client.py", mutated)
    findings, _ = run([path])
    assert any(f.rule == "seeded-rng-only" for f in findings)
    assert sc_main([str(path)], out=io.StringIO()) == 1


def test_inserting_nonposted_read_in_submit_path_fails(tmp_path):
    source = CLIENT_PY.read_text()
    anchor = "part = yield self._parts.get()"
    mutated = source.replace(
        anchor,
        "stale = yield from self._meta_conn.read(0, 16)\n        "
        + anchor)
    path = write_fixture(tmp_path, "repro/driver/client.py", mutated)
    findings, _ = run([path])
    assert any(f.rule == "no-nonposted-hotpath" for f in findings)


def test_doorbell_swap_in_submit_path_fails(tmp_path):
    source = CLIENT_PY.read_text()
    sqe_write = "sqe_write = self._sq_conn.write(offset, sqe.pack())"
    assert sqe_write in source
    # Move the SQE store after the doorbell ring: classic stale-fetch bug.
    mutated = source.replace("        " + sqe_write + "\n", "")
    mutated = mutated.replace(
        "            self.sq.tail.to_bytes(4, \"little\"))",
        "            self.sq.tail.to_bytes(4, \"little\"))\n"
        "        " + sqe_write)
    path = write_fixture(tmp_path, "repro/driver/client.py", mutated)
    findings, _ = run([path])
    assert any(f.rule == "doorbell-after-sq-write" for f in findings)


# --- suppressions --------------------------------------------------------

def test_same_line_suppression(tmp_path):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp():
            return time.time()  # staticcheck: ignore[no-wallclock] fixture
    """)
    assert check_file(path, [get_rule("no-wallclock")]) == []


def test_previous_comment_line_suppression(tmp_path):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp():
            # staticcheck: ignore[no-wallclock] fixture justification
            return time.time()
    """)
    assert check_file(path, [get_rule("no-wallclock")]) == []


def test_suppression_for_other_rule_does_not_silence(tmp_path):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp():
            return time.time()  # staticcheck: ignore[units-discipline]
    """)
    assert len(check_file(path, [get_rule("no-wallclock")])) == 1


# --- baseline ------------------------------------------------------------

def test_baseline_roundtrip_filters_known_findings(tmp_path):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp():
            return time.time()
    """)
    findings, _ = run([path])
    assert len(findings) == 1
    blfile = tmp_path / "baseline.json"
    baseline.write(blfile, findings)
    filtered, _ = run([path], baseline=blfile)
    assert filtered == []
    # A *new* finding is still reported.
    path.write_text(path.read_text()
                    + "\ndef stamp2():\n    return time.perf_counter()\n")
    fresh, _ = run([path], baseline=blfile)
    assert len(fresh) == 1
    assert "perf_counter" in fresh[0].source_line


# --- runner / output -----------------------------------------------------

def test_select_limits_rules(tmp_path):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def setup(sim):
            sim.timeout(1.5)
            return time.time()
    """)
    findings, _ = run([path], select=["units-discipline"])
    assert {f.rule for f in findings} == {"units-discipline"}


def test_parse_error_is_reported_not_raised(tmp_path):
    path = write_fixture(tmp_path, "repro/sim/x.py", "def broken(:\n")
    findings = check_file(path, all_rules())
    assert [f.rule for f in findings] == ["parse-error"]


def test_json_output_and_exit_codes(tmp_path):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp():
            return time.time()
    """)
    out = io.StringIO()
    assert sc_main([str(path), "--format", "json"], out=out) == 1
    payload = json.loads(out.getvalue())
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["rule"] == "no-wallclock"
    assert payload["findings"][0]["fingerprint"]

    clean = write_fixture(tmp_path, "repro/sim/clean.py",
                          "def f(sim):\n    return sim.now\n")
    assert sc_main([str(clean)], out=io.StringIO()) == 0
    assert sc_main([str(tmp_path / "missing.py")],
                   out=io.StringIO()) == 2
    assert sc_main([str(clean), "--select", "no-such-rule"],
                   out=io.StringIO()) == 2


def test_update_baseline_flow(tmp_path):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp():
            return time.time()
    """)
    blfile = tmp_path / "bl.json"
    assert sc_main([str(path), "--update-baseline", str(blfile)],
                   out=io.StringIO()) == 0
    assert sc_main([str(path), "--baseline", str(blfile)],
                   out=io.StringIO()) == 0


def test_list_rules_output():
    out = io.StringIO()
    assert sc_main(["--list-rules"], out=out) == 0
    assert "no-nonposted-hotpath" in out.getvalue()


# --- CLI integration -----------------------------------------------------

def test_cli_staticcheck_subcommand(tmp_path, capsys):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp():
            return time.time()
    """)
    assert cli_main(["staticcheck", str(path)]) == 1
    captured = capsys.readouterr()
    assert "no-wallclock" in captured.out
    assert cli_main(["staticcheck", str(PACKAGE_DIR / "sim")]) == 0


def test_multiple_pragmas_on_one_line(tmp_path):
    # Two violations on one line, silenced by two separate markers —
    # the second pragma must not be swallowed by the first.
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp(sim):
            return sim.timeout(1.5), time.time()  # staticcheck: ignore[units-discipline] fixture # staticcheck: ignore[no-wallclock] fixture
    """)
    rules = [get_rule("units-discipline"), get_rule("no-wallclock")]
    # Each rule alone would flag the line ...
    unsuppressed = write_fixture(tmp_path, "repro/sim/y.py", """
        import time
        def stamp(sim):
            return sim.timeout(1.5), time.time()
    """)
    assert {f.rule for f in check_file(unsuppressed, rules)} == {
        "units-discipline", "no-wallclock"}
    # ... and both pragmas together silence both.
    assert check_file(path, rules) == []


def test_multiple_pragmas_mixed_with_comma_list(tmp_path):
    from repro.staticcheck.suppress import Suppressions
    sup = Suppressions(
        ["x = f()  # staticcheck: ignore[rule-a, rule-b] one "
         "# staticcheck: ignore[rule-c] two"])
    assert sup.matches("rule-a", 1)
    assert sup.matches("rule-b", 1)
    assert sup.matches("rule-c", 1)
    assert not sup.matches("rule-d", 1)
    assert sup.mentioned == {"rule-a", "rule-b", "rule-c"}


# --- parallel scanning ----------------------------------------------------

def test_jobs_matches_serial_findings(tmp_path):
    for i in range(4):
        write_fixture(tmp_path, f"repro/sim/mod{i}.py", f"""
            import time
            def stamp{i}():
                return time.time()
        """)
    write_fixture(tmp_path, "repro/sim/clean.py",
                  "def f(sim):\n    return sim.now\n")
    serial, n_serial = run([tmp_path])
    parallel, n_parallel = run([tmp_path], jobs=2)
    assert n_serial == n_parallel == 5
    assert serial == parallel           # same findings, same order
    assert len(serial) == 4


def test_jobs_respects_select(tmp_path):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp(sim):
            sim.timeout(1.5)
            return time.time()
    """)
    write_fixture(tmp_path, "repro/sim/z.py",
                  "def g(sim):\n    return sim.now\n")
    findings, _ = run([tmp_path], select=["units-discipline"], jobs=2)
    assert {f.rule for f in findings} == {"units-discipline"}


# --- stats ----------------------------------------------------------------

def test_stats_text_output(tmp_path):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp():
            return time.time()
    """)
    out = io.StringIO()
    assert sc_main([str(path), "--stats"], out=out) == 1
    text = out.getvalue()
    assert "stats: 1 file(s) in" in text
    assert "no-wallclock 1" in text


def test_stats_json_output(tmp_path):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp():
            return time.time()
    """)
    out = io.StringIO()
    assert sc_main([str(path), "--format", "json", "--stats"],
                   out=out) == 1
    payload = json.loads(out.getvalue())
    assert payload["stats"]["files_scanned"] == 1
    assert payload["stats"]["findings_per_rule"] == {"no-wallclock": 1}
    assert payload["stats"]["scan_time_ms"] >= 0


def test_cli_staticcheck_jobs_and_stats_passthrough(tmp_path, capsys):
    path = write_fixture(tmp_path, "repro/sim/x.py", """
        import time
        def stamp():
            return time.time()
    """)
    assert cli_main(["staticcheck", str(path), "--jobs", "2",
                     "--stats"]) == 1
    captured = capsys.readouterr()
    assert "no-wallclock" in captured.out
    assert "stats:" in captured.out
