"""Property-based tests for PCIe fabric invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PcieConfig
from repro.pcie import (Cluster, Fabric, NtbFunction, completion_cost,
                        read_request_cost, write_cost)
from repro.sim import Simulator
from repro.units import MiB


def build_pair(seed):
    """Two hosts over an NTB path (adapter-switch-adapter)."""
    sim = Simulator(seed=seed)
    cfg = PcieConfig()
    cluster = Cluster(sim, cfg)
    a = cluster.add_host("a", dram_size=64 * MiB)
    b = cluster.add_host("b", dram_size=64 * MiB)
    ad_a = cluster.add_switch("a.ad", host=a)
    ad_b = cluster.add_switch("b.ad", host=b)
    x = cluster.add_switch("x")
    cluster.connect(a.rc, ad_a)
    cluster.connect(b.rc, ad_b)
    cluster.connect(ad_a, x)
    cluster.connect(ad_b, x)
    fabric = Fabric(sim, cluster, cfg)
    ntb_a = NtbFunction(sim, "ntb-a", aperture=16 * MiB)
    ntb_a.install(a, ad_a, fabric)
    ntb_b = NtbFunction(sim, "ntb-b", aperture=16 * MiB)
    ntb_b.install(b, ad_b, fabric)
    return sim, cluster, fabric, a, b, ntb_a, ntb_b


class TestPostedOrderingProperty:
    @given(st.lists(st.tuples(st.integers(0, 63),    # slot
                              st.integers(1, 64),    # size
                              st.integers(0, 400)),  # gap ns
                    min_size=2, max_size=25),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_same_flow_posted_writes_never_reorder(self, ops, seed):
        """Any sequence of posted writes from one initiator to one
        remote host is delivered in submission order, regardless of
        sizes, gaps and per-chip jitter."""
        sim, cluster, fabric, a, b, ntb_a, ntb_b = build_pair(seed)
        region = b.alloc_dma(64 * 128)
        window = ntb_a.map_window(b, region, 64 * 128)
        deliveries = []
        original = b.memory.write

        def spy(addr, data):
            deliveries.append((sim.now, bytes(data)[:4]))
            original(addr, data)

        b.memory.write = spy

        def proc(sim):
            for i, (slot, size, gap) in enumerate(ops):
                payload = i.to_bytes(4, "little") + bytes(size)
                fabric.post_write(a.rc, a, window + slot * 64, payload)
                if gap:
                    yield sim.timeout(gap)

        sim.process(proc(sim))
        sim.run()
        assert len(deliveries) == len(ops)
        times = [t for t, _ in deliveries]
        order = [int.from_bytes(tag, "little") for _, tag in deliveries]
        assert order == list(range(len(ops)))
        assert times == sorted(times)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_read_your_writes_across_ntb(self, seed):
        sim, cluster, fabric, a, b, ntb_a, ntb_b = build_pair(seed)
        region = b.alloc_dma(4096)
        window = ntb_a.map_window(b, region, 4096)
        out = {}

        def proc(sim):
            yield from fabric.write(a.rc, a, window, b"fence-me")
            data = yield from fabric.read(a.rc, a, window, 8)
            out["data"] = data

        sim.process(proc(sim))
        sim.run()
        assert out["data"] == b"fence-me"


class TestLatencyProperties:
    @given(st.integers(1, 16))
    @settings(max_examples=8, deadline=None)
    def test_reads_cost_more_than_writes_of_same_size(self, pages):
        """Non-posted reads pay a round trip; posted writes one way."""
        sim, cluster, fabric, a, b, ntb_a, ntb_b = build_pair(11)
        nbytes = pages * 256
        region = b.alloc_dma(max(nbytes, 4096))
        window = ntb_a.map_window(b, region, max(nbytes, 4096))
        out = {}

        def proc(sim):
            start = sim.now
            yield from fabric.write(a.rc, a, window, b"w" * nbytes)
            out["write"] = sim.now - start
            start = sim.now
            yield from fabric.read(a.rc, a, window, nbytes)
            out["read"] = sim.now - start

        sim.process(proc(sim))
        sim.run()
        assert out["read"] > out["write"]

    def test_local_resolution_has_no_crossings(self):
        sim, cluster, fabric, a, b, ntb_a, ntb_b = build_pair(12)
        addr = a.alloc_dma(4096)
        res = fabric.resolve(a, addr, 64)
        assert res.crossings == 0
        assert res.host is a

    def test_window_resolution_counts_one_crossing(self):
        sim, cluster, fabric, a, b, ntb_a, ntb_b = build_pair(13)
        region = b.alloc_dma(4096)
        window = ntb_a.map_window(b, region, 4096)
        res = fabric.resolve(a, window, 64)
        assert res.crossings == 1
        assert res.host is b
        assert res.addr == region


class TestWireCostProperties:
    @given(st.integers(1, 1 << 20), st.integers(1, 1 << 20))
    @settings(max_examples=60, deadline=None)
    def test_wire_cost_monotone_in_payload(self, x, y):
        cfg = PcieConfig()
        small, big = min(x, y), max(x, y)
        assert write_cost(small, cfg).bytes_on_wire <= \
            write_cost(big, cfg).bytes_on_wire
        assert completion_cost(small, cfg).bytes_on_wire <= \
            completion_cost(big, cfg).bytes_on_wire
        assert read_request_cost(small, cfg).packets <= \
            read_request_cost(big, cfg).packets

    @given(st.integers(1, 1 << 18))
    @settings(max_examples=60, deadline=None)
    def test_packet_counts_match_chunking(self, size):
        cfg = PcieConfig()
        w = write_cost(size, cfg)
        assert (w.packets - 1) * cfg.max_payload_size < size
        assert size <= w.packets * cfg.max_payload_size
