"""Direct coverage for the shared admin-queue layer and DMA pools."""

import pytest

from repro.driver import AdminError, AdminQueues, DmaPool, local_pool
from repro.nvme import AdminOpcode, SubmissionEntry
from repro.scenarios.testbed import LocalTestbed


def make_admin(seed=500):
    bed = LocalTestbed(seed=seed)
    admin = AdminQueues(bed.sim, bed.fabric, bed.host,
                        bed.nvme.bars[0].base, bed.config)
    return bed, admin


class TestAdminQueues:
    def test_enable_disable_cycle(self):
        bed, admin = make_admin()

        def flow(sim):
            yield from admin.enable_controller()
            assert bed.nvme.regs.ready
            yield from admin.disable_controller()
            assert not bed.nvme.regs.ready

        bed.sim.run(until=bed.sim.process(flow(bed.sim)))

    def test_identify_and_queue_count(self):
        bed, admin = make_admin()

        def flow(sim):
            yield from admin.enable_controller()
            ident = yield from admin.identify_controller()
            count = yield from admin.get_queue_count()
            return ident, count

        ident, count = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert ident.nn == 1
        assert count == 31

    def test_submit_ok_raises_on_error_status(self):
        bed, admin = make_admin()

        def flow(sim):
            yield from admin.enable_controller()
            # delete a queue that was never created
            yield from admin.submit_ok(SubmissionEntry(
                opcode=AdminOpcode.DELETE_IO_SQ, cdw10=9))

        proc = bed.sim.process(flow(bed.sim))
        with pytest.raises(AdminError):
            bed.sim.run(until=proc)

    def test_queue_lifecycle_via_helpers(self):
        bed, admin = make_admin()

        def flow(sim):
            yield from admin.enable_controller()
            cq_mem = bed.host.alloc_dma(64 * 16)
            sq_mem = bed.host.alloc_dma(64 * 64)
            yield from admin.create_io_cq(3, 64, cq_mem)
            yield from admin.create_io_sq(3, 64, sq_mem, cqid=3)
            assert bed.nvme.io_queue_count == 1
            yield from admin.delete_io_sq(3)
            yield from admin.delete_io_cq(3)
            assert bed.nvme.io_queue_count == 0

        bed.sim.run(until=bed.sim.process(flow(bed.sim)))


class TestDmaPool:
    def test_local_pool_identity_translation(self):
        bed, _ = make_admin(seed=501)
        pool = local_pool(bed.host, 64 * 1024)
        cpu, dev = pool.alloc(4096)
        assert cpu == dev
        assert pool.to_device(cpu) == cpu
        pool.free(cpu)

    def test_offset_pool_translation(self):
        bed, _ = make_admin(seed=502)
        base = bed.host.alloc_dma(64 * 1024)
        pool = DmaPool(bed.host, base, 0xDEAD_0000, 64 * 1024)
        cpu, dev = pool.alloc(4096)
        assert dev - 0xDEAD_0000 == cpu - base
        with pytest.raises(ValueError):
            pool.to_device(base - 1)

    def test_pool_alignment(self):
        bed, _ = make_admin(seed=503)
        pool = local_pool(bed.host, 64 * 1024)
        cpu, _dev = pool.alloc(100, alignment=4096)
        assert cpu % 4096 == 0
