"""End-to-end determinism: identical seeds must give bit-identical
results, independent of object identities (``id()`` ordering) and
process state.  Guards the reproducibility claim in EXPERIMENTS.md."""

import numpy as np

from repro.scenarios import multihost, nvmeof_remote, ours_remote
from repro.workloads import FioJob, run_fio, run_fio_many


class TestScenarioDeterminism:
    def test_ours_remote_identical_latency_series(self):
        def run(seed):
            scenario = ours_remote(seed=seed)
            result = run_fio(scenario.device,
                             FioJob(rw="randrw", total_ios=150))
            return (result.read_latencies.values().tolist(),
                    result.write_latencies.values().tolist())

        assert run(1234) == run(1234)
        assert run(1234) != run(1235)

    def test_nvmeof_identical_latency_series(self):
        def run(seed):
            scenario = nvmeof_remote(seed=seed)
            result = run_fio(scenario.device,
                             FioJob(rw="randread", total_ios=100))
            return result.read_latencies.values().tolist()

        assert run(77) == run(77)

    def test_multihost_contention_is_deterministic(self):
        """Contention paths (shared links, media channels, canonical
        lock ordering) must not depend on object ids."""

        def run():
            scenario = multihost(3, seed=555, queue_depth=4)
            jobs = [(c, FioJob(name=f"j{i}", rw="randread", iodepth=4,
                               total_ios=120, region_lbas=1 << 20))
                    for i, c in enumerate(scenario.clients)]
            results = run_fio_many(jobs)
            return [r.read_latencies.values().tolist() for r in results]

        first = run()
        second = run()
        assert first == second
