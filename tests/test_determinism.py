"""End-to-end determinism: identical seeds must give bit-identical
results, independent of object identities (``id()`` ordering) and
process state.  Guards the reproducibility claim in EXPERIMENTS.md."""

import numpy as np

from repro.config import DEFAULT_CONFIG, QosConfig, replace
from repro.faults import FaultEvent, FaultPlan
from repro.scenarios import (chaos_cluster, cluster, multihost,
                             nvmeof_remote, ours_remote,
                             scale_out_cluster)
from repro.sim.rng import RngRegistry
from repro.workloads import FioJob, fio_generator, run_fio, run_fio_many


class TestScenarioDeterminism:
    def test_ours_remote_identical_latency_series(self):
        def run(seed):
            scenario = ours_remote(seed=seed)
            result = run_fio(scenario.device,
                             FioJob(rw="randrw", total_ios=150))
            return (result.read_latencies.values().tolist(),
                    result.write_latencies.values().tolist())

        assert run(1234) == run(1234)
        assert run(1234) != run(1235)

    def test_nvmeof_identical_latency_series(self):
        def run(seed):
            scenario = nvmeof_remote(seed=seed)
            result = run_fio(scenario.device,
                             FioJob(rw="randread", total_ios=100))
            return result.read_latencies.values().tolist()

        assert run(77) == run(77)

    def test_multihost_contention_is_deterministic(self):
        """Contention paths (shared links, media channels, canonical
        lock ordering) must not depend on object ids."""

        def run():
            scenario = multihost(3, seed=555, queue_depth=4)
            jobs = [(c, FioJob(name=f"j{i}", rw="randread", iodepth=4,
                               total_ios=120, region_lbas=1 << 20))
                    for i, c in enumerate(scenario.clients)]
            results = run_fio_many(jobs)
            return [r.read_latencies.values().tolist() for r in results]

        first = run()
        second = run()
        assert first == second


class TestSharedQpDeterminism:
    """The 64-client shared-QP scale-out replays bit-identically — the
    arbitration order on the shared SQs, the mailbox demux, and every
    exported telemetry byte are functions of the seed alone."""

    def _run(self):
        scn = scale_out_cluster(64, seed=909, queue_depth=4,
                                telemetry=True)
        jobs = [(c, FioJob(name=f"j{i}", rw="randrw", iodepth=4,
                           total_ios=10, seed_stream=f"fio{i}"))
                for i, c in enumerate(scn.clients)]
        results = run_fio_many(jobs)
        assert all(r.ios == 10 and r.errors == 0 for r in results)
        tele = scn.telemetry
        assert tele is not None
        return tele.prometheus_text(), tele.perfetto_json()

    def test_telemetry_bytes_identical_across_runs(self):
        first = self._run()
        second = self._run()
        assert first == second
        assert "repro_qp_tenants" in first[0]

    def test_route_cache_off_changes_nothing(self, monkeypatch):
        """The route cache is a pure-perf memo: disabling it must not
        perturb a single exported byte (see tests/test_perf_caches.py
        for the private-QP equivalent)."""
        baseline = self._run()
        monkeypatch.setenv("REPRO_NO_ROUTE_CACHE", "1")
        assert self._run() == baseline


class TestQosDeterminism:
    """QoS is opt-in: a disabled ``QosConfig`` — whatever its other
    fields say — must leave every exported byte of a shared-QP run
    untouched, and an *enabled* run must itself be a pure function of
    the seed."""

    def _digest(self, config=None, seed=606):
        scn = multihost(4, config=config, seed=seed, queue_depth=4,
                        sharing="force", telemetry=True)
        jobs = [(c, FioJob(name=f"j{i}", rw="randrw", iodepth=4,
                           total_ios=15, seed_stream=f"fio{i}"))
                for i, c in enumerate(scn.clients)]
        results = run_fio_many(jobs)
        assert all(r.ios == 15 and r.errors == 0 for r in results)
        tele = scn.telemetry
        assert tele is not None
        series = [r.read_latencies.values().tolist() for r in results]
        return (tele.prometheus_text(), tele.perfetto_json()), series

    def test_disabled_qos_config_is_inert(self):
        """enabled=False with aggressive-looking knobs == the default
        config, byte for byte — no arbiter, no extra metrics."""
        loud = replace(DEFAULT_CONFIG, qos=QosConfig(
            enabled=False, policy="wfq", quantum=9, weights=(3, 1),
            throttle_window=5))
        baseline_bytes, baseline_series = self._digest()
        loud_bytes, loud_series = self._digest(config=loud)
        assert loud_bytes == baseline_bytes
        assert loud_series == baseline_series
        assert "repro_qos_grants_total" not in baseline_bytes[0]

    def test_enabled_qos_run_is_seed_deterministic(self):
        from repro.qos import run_qos

        def digest(seed):
            run = run_qos("wfq", throttle=True, seed=seed,
                          horizon_ns=2_000_000)
            return (run.prometheus_text(), run.timeseries_jsonl(),
                    run.slo_report_json(), run.perfetto_json())

        first = digest(31)
        assert first == digest(31)
        assert "repro_qos_grants_total" in first[0]
        assert digest(32) != first


class TestClusterDeterminism:
    """Multi-device cluster runs fall under the same bit-identical
    discipline: placement, striping, multipath retries and every
    exported telemetry byte are functions of the seed alone."""

    def _digest(self, seed=777, sanitizer=False):
        scn = cluster(n_clients=8, n_devices=2, width=2, replicas=2,
                      seed=seed, queue_depth=4, telemetry=True,
                      sanitizer=sanitizer)
        jobs = [(vol, FioJob(name=f"j{i}", rw="randrw", iodepth=4,
                             total_ios=12, seed_stream=f"fio{i}"))
                for i, vol in enumerate(scn.volumes)]
        results = run_fio_many(jobs)
        assert all(r.ios == 12 and r.errors == 0 for r in results)
        tele = scn.telemetry
        assert tele is not None
        series = [r.read_latencies.values().tolist() for r in results]
        return (tele.prometheus_text(), tele.perfetto_json()), series

    def test_cluster_digest_identical_across_runs(self):
        first_bytes, first_series = self._digest()
        second_bytes, second_series = self._digest()
        assert first_bytes == second_bytes
        assert first_series == second_series
        assert "repro_cluster_paths_live" in first_bytes[0]
        assert self._digest(seed=778)[1] != first_series

    def test_sanitizer_is_zero_perturbation_on_cluster(self):
        on_bytes, on_series = self._digest(sanitizer=True)
        off_bytes, off_series = self._digest(sanitizer=False)
        assert on_bytes == off_bytes
        assert on_series == off_series

    KILL = FaultPlan((FaultEvent(150_000, "ctrl_stall", "ctrl:nvme1",
                                 duration_ns=0),))

    def _chaos_trace(self, seed):
        scn = cluster(n_clients=3, n_devices=2, width=2, replicas=2,
                      seed=seed, queue_depth=4, faults=True,
                      plan=self.KILL)
        scn.injector.start()
        procs = [scn.sim.process(fio_generator(
            vol, FioJob(name=f"j{i}", rw="randrw", iodepth=4,
                        total_ios=80, seed_stream=f"fio{i}")))
            for i, vol in enumerate(scn.volumes)]
        scn.sim.run(until=scn.sim.timeout(500_000_000))
        assert all(p.triggered for p in procs)
        return scn.trace_log()

    def test_device_kill_replay_is_bit_identical(self):
        first = self._chaos_trace(881)
        assert first == self._chaos_trace(881)
        assert any(r[1] == "cluster" for r in first)    # failover seen
        assert first != self._chaos_trace(882)


class TestChaosDeterminism:
    """A ``(seed, plan)`` pair fully determines a chaos run — faults,
    retries, lease reclaims, everything in the trace."""

    PLAN = FaultPlan((
        FaultEvent(200_000, "link_down", "link:host2",
                   duration_ns=500_000),
        FaultEvent(400_000, "tlp_drop", "link:host3", probability=0.1,
                   duration_ns=800_000),
    ))

    def _trace(self, seed):
        sc = chaos_cluster(n_clients=3, plan=self.PLAN, seed=seed)
        sc.injector.start()
        procs = [sc.sim.process(fio_generator(
            client, FioJob(name=f"j{i}", rw="randrw", iodepth=4,
                           total_ios=150, seed_stream=f"fio{i}")))
            for i, client in enumerate(sc.clients)]
        sc.sim.run(until=sc.sim.timeout(100_000_000))
        assert all(p.triggered for p in procs)
        return sc.trace_log()

    def test_same_seed_and_plan_replay_bit_identical(self):
        first = self._trace(321)
        second = self._trace(321)
        assert first == second
        assert any(r[1] == "fault" for r in first)      # faults fired
        assert first != self._trace(322)

    def test_random_plan_schedule_depends_only_on_seed(self):
        def make(seed):
            return FaultPlan.random(
                RngRegistry(seed), "chaos", horizon_ns=5_000_000,
                link_points=["link:a", "link:b"],
                ctrl_points=["ctrl:n"], client_points=["client:c"],
                n_events=12, kill_at_most=1)

        assert make(11) == make(11)
        assert make(11) != make(12)
