"""Cross-check: driver-built PRPs must resolve, on the controller side,
to exactly the driver's buffer — for every size and offset class."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.driver.prputil import prps_for_contiguous
from repro.nvme import PrpError, build_prps, resolve_prps
from repro.nvme.constants import PAGE_SIZE


def _drain(gen):
    """Run a resolve_prps generator whose read_page needs no sim."""
    try:
        next(gen)
        raise AssertionError("resolver yielded unexpectedly")
    except StopIteration as stop:
        return stop.value


def _resolve(prp1, prp2, length, list_memory):
    def read_page(addr):
        return list_memory[addr]
        yield  # pragma: no cover - make it a generator

    gen = resolve_prps(prp1, prp2, length, read_page)
    # resolve_prps is a generator; drive it manually feeding list pages.
    try:
        request = next(gen)
        raise AssertionError("resolver must not yield events here")
    except StopIteration as stop:
        return stop.value


class TestDriverControllerAgreement:
    @given(st.integers(1, 64))   # pages
    @settings(max_examples=40, deadline=None)
    def test_contiguous_prps_resolve_to_buffer(self, pages):
        base = 0x40_0000
        list_page_addr = 0x80_0000
        length = pages * PAGE_SIZE
        list_memory = {}

        prp1, prp2 = prps_for_contiguous(
            base, length, list_page_addr,
            lambda blob: list_memory.__setitem__(list_page_addr, blob))

        segs = _resolve(prp1, prp2, length, list_memory)
        # Coverage: exactly [base, base+length), in order, page-chunked.
        cursor = base
        total = 0
        for addr, size in segs:
            assert addr == cursor
            cursor += size
            total += size
        assert total == length

    @given(st.integers(1, 3 * PAGE_SIZE), st.integers(0, PAGE_SIZE - 4))
    @settings(max_examples=60, deadline=None)
    def test_build_prps_resolves_with_offsets(self, length, offset):
        """The generic builder handles unaligned PRP1 starts."""
        base = 0x40_0000 + offset
        allocated = []
        list_memory = {}

        def alloc(n):
            addr = 0x90_0000 + len(allocated) * PAGE_SIZE
            allocated.append(addr)
            return addr

        descriptor = build_prps(base, length, alloc)
        for addr, blob in descriptor.list_pages:
            list_memory[addr] = blob

        segs = _resolve(descriptor.prp1, descriptor.prp2, length,
                        list_memory)
        cursor = base
        total = 0
        for addr, size in segs:
            assert addr == cursor
            cursor += size
            total += size
        assert total == length
        # no segment crosses a page boundary
        for addr, size in segs:
            assert (addr % PAGE_SIZE) + size <= PAGE_SIZE


class TestResolverRejectsGarbage:
    def test_zero_prp2_when_required(self):
        with pytest.raises(PrpError):
            _resolve(0x1000, 0, 3 * PAGE_SIZE, {})

    def test_unaligned_prp2(self):
        with pytest.raises(PrpError):
            _resolve(0x1000, 0x2100, 2 * PAGE_SIZE, {})

    def test_zero_list_entry(self):
        list_memory = {0x3000: bytes(PAGE_SIZE)}   # all-zero pointers
        with pytest.raises(PrpError):
            _resolve(0x1000, 0x3000, 4 * PAGE_SIZE, list_memory)

    def test_driver_rejects_unaligned_buffer(self):
        with pytest.raises(ValueError):
            prps_for_contiguous(0x1004, 4096, 0x2000, lambda b: None)

    def test_driver_rejects_chained_sizes(self):
        # > 512 pages would need a chained list.
        with pytest.raises(ValueError):
            prps_for_contiguous(0x10_0000, 514 * PAGE_SIZE, 0x2000,
                                lambda b: None)
