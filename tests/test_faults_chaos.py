"""Chaos suite: seeded fault plans against a live multi-client cluster.

Each test drives the full stack — fio workloads over distributed-driver
clients sharing one controller — while the
:class:`~repro.faults.FaultInjector` flips link, controller, and client
fault points, and asserts the recovery invariants end to end:

* every block request completes **exactly once** — a lost completion
  would hang its fio worker past the horizon, and a duplicated one
  would double-trigger the request's ``Event`` (which raises);
* survivors of a client kill keep making progress and finish clean;
* the manager's liveness lease reclaims a dead client's queue pairs
  within the lease window, and queue-id accounting stays consistent;
* a ``(seed, plan)`` pair replays bit-identically.

Chaos clusters run heartbeat/lease processes forever, so every run is
bounded by an explicit horizon — never ``sim.run()`` to exhaustion.
"""

import pytest

from repro.driver import (STATUS_HOST_CRASHED, STATUS_HOST_SHUTDOWN,
                          AdminError, BlockRequest, ClientError,
                          DistributedNvmeClient)
from repro.driver import metadata as meta
from repro.faults import FaultEvent, FaultPlan
from repro.scenarios import CHAOS_RELIABILITY, chaos_cluster
from repro.workloads import FioJob, fio_generator

HORIZON_NS = 500_000_000


def run_chaos(plan, seed=11, n_clients=4, total_ios=300, iodepth=4,
              settle_ns=5_000_000, **cluster_kwargs):
    """Start the cluster + injector + one fio job per client; run to a
    horizon and return (scenario, per-client FioResult list)."""
    sc = chaos_cluster(n_clients=n_clients, plan=plan, seed=seed,
                       **cluster_kwargs)
    sc.injector.start()
    procs = []
    for i, client in enumerate(sc.clients):
        job = FioJob(name=f"j{i}", rw="randrw", bs=4096, iodepth=iodepth,
                     total_ios=total_ios, seed_stream=f"fio{i}")
        procs.append(sc.sim.process(fio_generator(client, job)))
    sc.sim.run(until=sc.sim.timeout(HORIZON_NS))
    assert all(p.triggered for p in procs), "a fio worker deadlocked"
    # Let the lease watchdog observe any heartbeat that stopped near the
    # end of the workload.
    sc.sim.run(until=sc.sim.timeout(settle_ns))
    return sc, [p.value for p in procs]


def total_qids(manager):
    return manager.queues_in_use + len(manager._free_qids)


class TestKillOneOfFour:
    """The acceptance scenario: kill 1 of 4 clients mid-workload."""

    PLAN = FaultPlan.kill("host2-nvme", at_ns=1_000_000)

    def test_survivors_finish_and_lease_reclaims(self):
        sc, results = run_chaos(self.PLAN, seed=11)
        victim = sc.clients[1]
        baseline = total_qids(sc.manager)

        for client, result in zip(sc.clients, results):
            # exactly-once: every submitted I/O either completed OK or
            # surfaced as an error — none vanished, none doubled.
            assert result.ios + result.errors == 300
            assert not client._inflight
            if client is not victim:
                assert result.errors == 0 and result.ios == 300

        assert victim.crashed
        # Post-kill submissions fail fast with the host-side status.
        assert results[1].errors > 0

        # The manager noticed the dead heartbeat and reclaimed the QP.
        assert sc.manager.leases_reclaimed == 1
        assert sc.manager.queues_in_use == 3
        assert total_qids(sc.manager) == baseline

    def test_reclaim_happens_within_lease_window(self):
        sc, _results = run_chaos(self.PLAN, seed=11)
        rel = CHAOS_RELIABILITY
        crashed = [r.time_ns for r in sc.tracer.records
                   if r.message == "client-crashed"]
        reclaimed = [r.time_ns for r in sc.tracer.records
                     if r.message == "lease-reclaim"]
        assert len(crashed) == 1 and len(reclaimed) == 1
        # The watchdog needs one interval to notice the last beat, the
        # lease to expire, and one more check interval to act on it.
        bound = (rel.heartbeat_interval_ns + rel.lease_timeout_ns
                 + 2 * rel.lease_check_interval_ns)
        assert 0 < reclaimed[0] - crashed[0] <= bound

    def test_reclaimed_slot_and_heartbeat_are_cleared(self):
        sc, _results = run_chaos(self.PLAN, seed=11)
        seg = sc.manager.metadata_segment
        slot = sc.clients[1].slot_index
        raw = seg.read(meta.slot_offset(slot), meta.SLOT_SIZE)
        assert meta.unpack_slot(raw)["status"] == meta.SLOT_FREE
        hb = seg.read(meta.heartbeat_offset(slot), meta.HEARTBEAT_SIZE)
        assert hb == bytes(meta.HEARTBEAT_SIZE)

    def test_replays_bit_identical(self):
        def one_run():
            sc, results = run_chaos(self.PLAN, seed=11)
            return (sc.trace_log(),
                    [(r.ios, r.errors) for r in results])

        first = one_run()
        second = one_run()
        assert first == second
        assert len(first[0]) > 0

    def test_different_seed_changes_the_schedule(self):
        # The victim dies at the same plan time, but the interleaving
        # around it (what raced the kill) is seed-dependent.
        sc_a, _ = run_chaos(self.PLAN, seed=11)
        sc_b, _ = run_chaos(self.PLAN, seed=12)
        assert sc_a.trace_log() != sc_b.trace_log()


class TestKillSharedCoTenant:
    """Queue-sharing chaos: kill 1 of 3 co-tenants of one shared SQ
    mid-I/O.  The lease reclaim must free only the dead tenant's slot
    window — the shared QP itself and the co-tenants' windows survive,
    and the survivors finish with zero timeouts."""

    PLAN = FaultPlan.kill("host2-nvme", at_ns=1_000_000)

    def _run(self, seed=11):
        return run_chaos(self.PLAN, seed=seed, n_clients=3,
                         sharing="force")

    def test_reclaim_frees_only_the_dead_window(self):
        sc, results = self._run()
        victim = sc.clients[1]
        survivors = [c for c in sc.clients if c is not victim]
        assert all(c._shared for c in sc.clients)
        assert len(sc.manager.shared_qps) == 1
        qp = next(iter(sc.manager.shared_qps.values()))

        for client, result in zip(sc.clients, results):
            assert result.ios + result.errors == 300   # exactly-once
            assert not client._inflight
        assert victim.crashed and results[1].errors > 0

        # The lease reclaimed the tenancy, not the queue pair: the
        # shared QP is still up, hosting the two survivors.
        assert sc.manager.leases_reclaimed == 1
        assert sc.manager.queues_in_use == 1
        assert qp.tenants[victim._tenant] is None
        for c in survivors:
            ten = qp.tenants[c._tenant]
            assert ten is not None and ten.slot == c.slot_index
        assert qp.free_windows == qp.nwindows - 2
        assert not qp.draining        # the dead window fully drained

    def test_survivors_unperturbed(self):
        sc, results = self._run()
        victim = sc.clients[1]
        for client, result in zip(sc.clients, results):
            if client is victim:
                continue
            assert result.ios == 300 and result.errors == 0
            assert client.timeouts == 0

    def test_replays_bit_identical(self):
        def one_run():
            sc, results = self._run()
            return (sc.trace_log(),
                    [(r.ios, r.errors) for r in results])

        first = one_run()
        assert first == one_run()
        assert len(first[0]) > 0


class TestLinkFaults:
    def test_short_flap_recovers_without_fencing(self):
        """An outage shorter than the lease: timeouts and retries, but
        the client is never fenced and every I/O eventually lands."""
        plan = FaultPlan.link_flap("host2", at_ns=200_000,
                                   duration_ns=500_000)
        sc, results = run_chaos(plan, seed=7)
        assert sc.testbed.fabric.dropped_writes > 0   # the fault bit
        for result in results:
            assert result.ios == 300 and result.errors == 0
        assert sc.manager.leases_reclaimed == 0
        assert sc.manager.queues_in_use == 4
        assert sc.clients[1].timeouts > 0
        assert sc.clients[1].retries > 0

    def test_long_outage_fences_the_client(self):
        """An outage longer than the lease: the manager must treat the
        unreachable client as dead and reclaim its queue pair, while
        the survivors never notice."""
        plan = FaultPlan.link_flap("host2", at_ns=500_000,
                                   duration_ns=3_000_000)
        sc, results = run_chaos(plan, seed=7)
        assert sc.manager.leases_reclaimed == 1
        assert sc.manager.queues_in_use == 3
        for i, result in enumerate(results):
            assert result.ios + result.errors == 300
            if i != 1:
                assert result.errors == 0
        assert results[1].errors > 0    # fenced mid-run

    def test_tlp_drops_rescued_by_cq_resync(self):
        """Random CQE drops leave phase holes in the completion ring;
        the client-side resync must skip them so nothing wedges."""
        plan = FaultPlan((
            FaultEvent(100_000, "tlp_drop", "link:host3",
                       probability=0.2, duration_ns=1_000_000),))
        sc, results = run_chaos(plan, seed=7)
        for result in results:
            assert result.ios == 300 and result.errors == 0
        resyncs = [r for r in sc.tracer.records
                   if r.message == "cq-resync"]
        assert resyncs, "drops never exercised the resync path"
        assert sc.clients[2].stale_completions > 0

    def test_tlp_delay_slows_but_never_fails(self):
        plan = FaultPlan((
            FaultEvent(100_000, "tlp_delay", "link:host4",
                       delay_ns=2_000, duration_ns=2_000_000),))
        sc, results = run_chaos(plan, seed=7)
        for result in results:
            assert result.ios == 300 and result.errors == 0
        assert sc.manager.leases_reclaimed == 0


class TestControllerFaults:
    def test_stall_and_abort_bounded_errors(self):
        plan = FaultPlan((
            FaultEvent(150_000, "ctrl_stall", "ctrl:nvme0",
                       duration_ns=300_000),
            FaultEvent(100_000, "ctrl_abort", "ctrl:nvme0",
                       probability=0.05, duration_ns=1_000_000),))
        sc, results = run_chaos(plan, seed=7)
        total_errors = sum(r.errors for r in results)
        assert 0 < total_errors < 100   # a few aborts, not a collapse
        for result in results:
            assert result.ios + result.errors == 300
        assert sc.manager.leases_reclaimed == 0


class TestRandomPlanChaos:
    """Property-style: a seeded random plan must never violate the
    exactly-once / accounting invariants, whatever it injects."""

    @pytest.mark.parametrize("seed", [3, 21])
    def test_invariants_hold_under_random_plans(self, seed):
        sc0 = chaos_cluster(n_clients=3, seed=seed)
        baseline = total_qids(sc0.manager)
        plan = FaultPlan.random(
            sc0.sim.rng, "chaos-plan", horizon_ns=3_000_000,
            link_points=sc0.link_points()[1:],   # spare the device host
            ctrl_points=[sc0.ctrl_point],
            client_points=sc0.client_points(),
            n_events=6, max_outage_ns=400_000,
            max_drop_probability=0.1, kill_at_most=1)
        del sc0

        def one_run():
            sc, results = run_chaos(plan, seed=seed, n_clients=3,
                                    total_ios=200)
            for client, result in zip(sc.clients, results):
                assert result.ios + result.errors == 200
                assert not client._inflight
            # No queue id leaked or double-freed, whatever was injected.
            assert total_qids(sc.manager) == baseline
            kills = sum(1 for ev in plan.events
                        if ev.action == "kill_client")
            assert sc.manager.leases_reclaimed <= kills + 1
            return sc.trace_log(), [(r.ios, r.errors) for r in results]

        assert one_run() == one_run()


class TestCreateQpRollback:
    """Satellite regression: an SQ-create failure mid-RPC must delete
    the half-created CQ and return the qid to the free pool."""

    def test_admin_failure_rolls_back(self, monkeypatch):
        sc = chaos_cluster(n_clients=1, seed=5)
        manager, bed = sc.manager, sc.testbed
        free_before = sorted(manager._free_qids)
        cqs_before = set(bed.nvme.cqs)

        def failing_create_sq(qid, entries, addr, cqid):
            raise AdminError("injected SQ-create failure")
            yield   # pragma: no cover - make it a generator

        monkeypatch.setattr(manager.admin, "create_io_sq",
                            failing_create_sq)
        late = DistributedNvmeClient(
            sc.sim, bed.smartio, bed.node(1), bed.nvme_device_id,
            manager.config, slot_index=1, name="late-client")
        with pytest.raises(ClientError, match="manager refused"):
            sc.sim.run(until=sc.sim.process(late.start()))

        assert sorted(manager._free_qids) == free_before
        assert set(bed.nvme.cqs) == cqs_before       # CQ rolled back
        assert manager.queues_in_use == 1            # only client 0's

    def test_recreate_succeeds_after_rollback(self, monkeypatch):
        sc = chaos_cluster(n_clients=1, seed=5)
        manager, bed = sc.manager, sc.testbed
        real = manager.admin.create_io_sq
        fail_once = {"left": 1}

        def flaky_create_sq(qid, entries, addr, cqid):
            if fail_once["left"]:
                fail_once["left"] -= 1
                raise AdminError("injected")
            return (yield from real(qid, entries, addr, cqid))

        monkeypatch.setattr(manager.admin, "create_io_sq",
                            flaky_create_sq)
        late = DistributedNvmeClient(
            sc.sim, bed.smartio, bed.node(1), bed.nvme_device_id,
            manager.config, slot_index=1, name="late-client")
        with pytest.raises(ClientError):
            sc.sim.run(until=sc.sim.process(late.start()))
        retry = DistributedNvmeClient(
            sc.sim, bed.smartio, bed.node(1), bed.nvme_device_id,
            manager.config, slot_index=1, name="retry-client")
        sc.sim.run(until=sc.sim.process(retry.start()))
        assert retry.qid is not None
        assert manager.queues_in_use == 2


class TestShutdownFailsInflight:
    """Satellite regression: orderly shutdown must stop the pollers and
    fail in-flight commands with a distinct host-side status instead of
    leaving their waiters hanging."""

    def _stuck_cluster(self):
        """One client whose controller is stalled so I/Os stay in
        flight indefinitely."""
        plan = FaultPlan((FaultEvent(0, "ctrl_stall", "ctrl:nvme0"),))
        sc = chaos_cluster(n_clients=1, plan=plan, seed=9)
        sc.injector.start()
        sc.sim.run(until=sc.sim.timeout(10_000))
        return sc

    def test_shutdown_releases_waiters_with_distinct_status(self):
        sc = self._stuck_cluster()
        client = sc.clients[0]
        done = [client.submit(BlockRequest("read", lba=i, nblocks=1))
                for i in range(3)]
        sc.sim.run(until=sc.sim.timeout(50_000))
        assert len(client._inflight) == 3
        assert not any(ev.triggered for ev in done)

        # The stall also freezes the admin queue, so the waiters must
        # be released at shutdown *entry*, before the DELETE_QP RPC.
        teardown = sc.sim.process(client.shutdown())
        sc.sim.run(until=sc.sim.timeout(10_000))
        for ev in done:
            assert ev.triggered
            assert ev.value.status == STATUS_HOST_SHUTDOWN
            assert not ev.value.ok
        assert not client._inflight
        assert client._poll_proc is None and client._hb_proc is None

        sc.registry.resume("ctrl:nvme0")   # let the RPC drain
        sc.sim.run(until=teardown)
        assert client.qid is None
        assert sc.manager.queues_in_use == 0

    def test_crash_releases_waiters_and_fails_fast(self):
        sc = self._stuck_cluster()
        client = sc.clients[0]
        done = [client.submit(BlockRequest("read", lba=i, nblocks=1))
                for i in range(2)]
        sc.sim.run(until=sc.sim.timeout(50_000))

        client.crash()
        sc.sim.run(until=sc.sim.timeout(10_000))
        for ev in done:
            assert ev.triggered
            assert ev.value.status == STATUS_HOST_CRASHED
        # New submissions drain fast with the same status (workloads
        # finish instead of hanging on a dead host).
        late = client.submit(BlockRequest("read", lba=9, nblocks=1))
        sc.sim.run(until=sc.sim.timeout(10_000))
        assert late.triggered
        assert late.value.status == STATUS_HOST_CRASHED
        client.crash()   # idempotent
