"""Tests for the stock-Linux local NVMe driver baseline."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.driver import BlockError, BlockRequest, StockNvmeDriver
from repro.scenarios.testbed import LocalTestbed


def make_driver(seed=33, queue_depth=64):
    bed = LocalTestbed(seed=seed)
    drv = StockNvmeDriver(bed.sim, bed.fabric, bed.host,
                          bed.nvme.bars[0].base, bed.config,
                          queue_depth=queue_depth)
    boot = bed.sim.process(drv.start())
    bed.sim.run(until=boot)
    return bed, drv


class TestBringUp:
    def test_start_discovers_geometry(self):
        bed, drv = make_driver()
        assert drv.lba_bytes == 512
        assert drv.capacity_lbas == bed.nvme.namespaces[1].capacity_lbas
        assert bed.nvme.io_queue_count == 1


class TestDataPath:
    def test_write_read_roundtrip(self):
        bed, drv = make_driver()
        payload = bytes(range(256)) * 16   # 4 KiB

        def flow(sim):
            req = yield from drv.io(BlockRequest("write", lba=64,
                                                 data=payload))
            assert req.ok
            req = yield from drv.io(BlockRequest("read", lba=64,
                                                 nblocks=8))
            return req

        p = bed.sim.process(flow(bed.sim))
        req = bed.sim.run(until=p)
        assert req.ok
        assert req.result == payload

    def test_flush(self):
        bed, drv = make_driver()

        def flow(sim):
            req = yield from drv.io(BlockRequest("flush"))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok

    def test_out_of_range_rejected_at_block_layer(self):
        bed, drv = make_driver()
        with pytest.raises(BlockError):
            drv.submit(BlockRequest("read", lba=drv.capacity_lbas,
                                    nblocks=1))

    def test_misaligned_write_rejected(self):
        bed, drv = make_driver()
        with pytest.raises(BlockError):
            drv.submit(BlockRequest("write", lba=0, data=b"x" * 100))

    def test_latency_matches_p4800x_band(self):
        """Stock local 4 KiB QD1 reads: ~10-12.5 us end-to-end (media
        ~8 us + PCIe + interrupt + kernel path)."""
        bed, drv = make_driver()

        def flow(sim):
            lat = []
            for i in range(200):
                req = yield from drv.io(BlockRequest("read", lba=i * 8,
                                                     nblocks=8))
                assert req.ok
                lat.append(req.latency_ns)
            return lat

        lat = np.array(bed.sim.run(until=bed.sim.process(flow(bed.sim))))
        assert 9_800 < lat.min() < 12_500
        assert np.median(lat) < 13_000
        assert lat.max() < 16_000

    def test_interrupt_path_slower_than_bare_metal(self):
        """The IRQ+kernel completion path must cost several us over the
        raw device time (this is what polling avoids)."""
        bed, drv = make_driver()

        def flow(sim):
            req = yield from drv.io(BlockRequest("read", lba=0, nblocks=8))
            return req.latency_ns

        latency = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        # bare-metal polling path measured ~8.5-10 us in
        # test_nvme_controller; the stock kernel driver adds >1.5 us.
        assert latency > 10_000

    def test_concurrent_requests_pipeline(self):
        """At QD=8 the media channels overlap: total time for 16 I/Os
        must be far below 16x the QD1 latency."""
        bed, drv = make_driver()

        def flow(sim):
            start = sim.now
            events = [drv.submit(BlockRequest("read", lba=i * 8,
                                              nblocks=8))
                      for i in range(16)]
            yield sim.all_of(events)
            return sim.now - start

        elapsed = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        # 16 sequential QD1 reads would take ~175 us; 5 media channels
        # should cut this to well under half.
        assert elapsed < 80_000

    def test_latency_recorder_populated(self):
        bed, drv = make_driver()

        def flow(sim):
            for i in range(5):
                yield from drv.io(BlockRequest("read", lba=i, nblocks=1))

        bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert drv.completed == 5
        assert len(drv.latencies) == 5
        assert drv.bytes_moved == 5 * 512

    def test_queue_depth_backpressure(self):
        bed, drv = make_driver(queue_depth=2)

        def flow(sim):
            events = [drv.submit(BlockRequest("read", lba=i, nblocks=1))
                      for i in range(6)]
            yield sim.all_of(events)
            return True

        assert bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert drv.completed == 6
