"""Tests for the open-loop traffic service (workloads/open_loop.py)."""

import itertools
import pathlib

import numpy as np
import pytest

import repro
from repro.scenarios import local_linux, multihost
from repro.staticcheck import check_file, get_rule
from repro.workloads import (ARRIVAL_MODELS, OpenLoopJob, arrival_times,
                             open_loop_generator, peak_rate, rate_at,
                             run_open_loop, run_open_loop_many)


def take(job, n, seed=0):
    rng = np.random.default_rng(seed)
    return list(itertools.islice(arrival_times(job, rng), n))


class TestArrivalStreams:
    def test_poisson_matches_target_rate(self):
        job = OpenLoopJob(rate_iops=10_000.0, total_arrivals=None,
                          runtime_ns=1)
        times = take(job, 20_000)
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1e9 / job.rate_iops, rel=0.05)

    def test_streams_are_strictly_increasing_ints(self):
        for arrival in ARRIVAL_MODELS:
            job = OpenLoopJob(arrival=arrival, rate_iops=50_000.0,
                              total_arrivals=None, runtime_ns=1)
            times = take(job, 2_000)
            assert all(isinstance(t, int) for t in times)
            assert all(b > a for a, b in zip(times, times[1:]))

    def test_identical_seeds_identical_streams(self):
        job = OpenLoopJob(arrival="diurnal", rate_iops=25_000.0,
                          total_arrivals=None, runtime_ns=1)
        assert take(job, 3_000, seed=9) == take(job, 3_000, seed=9)
        assert take(job, 3_000, seed=9) != take(job, 3_000, seed=10)

    def test_bursty_arrivals_only_inside_on_phase(self):
        job = OpenLoopJob(arrival="bursty", rate_iops=100_000.0,
                          burst_duty=0.25, burst_period_ns=1_000_000,
                          total_arrivals=None, runtime_ns=1)
        times = take(job, 5_000)
        for t in times:
            assert rate_at(job, t) > 0.0, \
                f"arrival at {t} falls in the OFF phase"
        # long-run mean still honours rate_iops
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1e9 / job.rate_iops, rel=0.08)

    def test_diurnal_density_follows_envelope(self):
        period = 10_000_000
        job = OpenLoopJob(arrival="diurnal", rate_iops=50_000.0,
                          diurnal_amplitude=0.8,
                          diurnal_period_ns=period,
                          total_arrivals=None, runtime_ns=1)
        times = take(job, 20_000)
        # Peak half-period (sin > 0) must hold far more arrivals than
        # the trough half.
        peak = sum(1 for t in times if (t % period) < period // 2)
        trough = len(times) - peak
        assert peak > 2 * trough
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(1e9 / job.rate_iops, rel=0.08)

    def test_envelope_peaks_and_means(self):
        bursty = OpenLoopJob(arrival="bursty", rate_iops=10_000.0,
                             burst_duty=0.2)
        assert peak_rate(bursty) == pytest.approx(50_000.0)
        diurnal = OpenLoopJob(arrival="diurnal", rate_iops=10_000.0,
                              diurnal_amplitude=0.5)
        assert peak_rate(diurnal) == pytest.approx(15_000.0)
        # rate_at averages to rate_iops over one full period
        for job in (bursty, diurnal):
            period = (job.burst_period_ns if job.arrival == "bursty"
                      else job.diurnal_period_ns)
            grid = np.arange(0, period, period // 1000)
            mean = float(np.mean([rate_at(job, int(t)) for t in grid]))
            assert mean == pytest.approx(job.rate_iops, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            OpenLoopJob(arrival="lognormal")
        with pytest.raises(ValueError):
            OpenLoopJob(rate_iops=0)
        with pytest.raises(ValueError):
            OpenLoopJob(total_arrivals=None, runtime_ns=None)
        with pytest.raises(ValueError):
            OpenLoopJob(inflight_cap=0)
        with pytest.raises(ValueError):
            OpenLoopJob(burst_duty=0.0)
        with pytest.raises(ValueError):
            OpenLoopJob(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            OpenLoopJob(rw="seqread")


class TestOpenLoopRuns:
    def test_run_completes_and_measures_from_arrival(self):
        scenario = local_linux(seed=500)
        job = OpenLoopJob(rate_iops=20_000.0, total_arrivals=150,
                          region_lbas=1 << 20)
        result = run_open_loop(scenario.device, job)
        assert result.issued == 150
        assert result.completed == 150
        assert result.errors == 0
        assert len(result.latencies) == 150
        # Open-loop latency (from scheduled arrival) can only exceed
        # the device-level service latency.
        assert result.latencies.summary().median >= \
            result.service_latencies.summary().median
        assert result.offered_iops == pytest.approx(20_000.0, rel=0.25)

    def test_identical_seeds_identical_results(self):
        job = OpenLoopJob(rate_iops=30_000.0, total_arrivals=120,
                          rw="randrw", region_lbas=1 << 20)
        a = run_open_loop(local_linux(seed=501).device, job)
        b = run_open_loop(local_linux(seed=501).device, job)
        assert a.latencies.values().tolist() == \
            b.latencies.values().tolist()
        assert a.elapsed_ns == b.elapsed_ns
        assert a.bytes_moved == b.bytes_moved

    def test_overload_charges_backlog_not_generator(self):
        """Offering far beyond the device's throughput with a tiny
        in-flight cap: arrivals keep their schedule, the cap queues
        them, and the wait lands in the open-loop latency."""
        scenario = local_linux(seed=502)
        job = OpenLoopJob(rate_iops=2_000_000.0, total_arrivals=120,
                          inflight_cap=2, region_lbas=1 << 20)
        result = run_open_loop(scenario.device, job)
        assert result.completed == 120
        assert result.capped_arrivals > 0
        assert result.max_backlog_ns > 0
        assert result.latencies.summary().median > \
            4 * result.service_latencies.summary().median

    def test_writes_and_mixed_ops(self):
        scenario = local_linux(seed=503)
        job = OpenLoopJob(rw="randwrite", rate_iops=20_000.0,
                          total_arrivals=60, region_lbas=1 << 20)
        result = run_open_loop(scenario.device, job)
        assert result.completed == 60
        assert result.bytes_moved == 60 * job.bs

    def test_many_tenants_run_concurrently(self):
        sc = multihost(2, seed=504, queue_depth=8)
        jobs = [OpenLoopJob(name=f"t{i}", rate_iops=20_000.0,
                            total_arrivals=80, region_lbas=1 << 20)
                for i in range(2)]
        results = run_open_loop_many(list(zip(sc.clients, jobs)))
        assert [r.completed for r in results] == [80, 80]
        assert all(r.errors == 0 for r in results)

    def test_runtime_bound_stops_arrivals(self):
        scenario = local_linux(seed=505)
        job = OpenLoopJob(rate_iops=100_000.0, total_arrivals=None,
                          runtime_ns=2_000_000, region_lbas=1 << 20)
        result = run_open_loop(scenario.device, job)
        # ~rate * runtime arrivals, all completed
        assert result.issued == pytest.approx(200, rel=0.3)
        assert result.completed == result.issued


class TestDeterminismDiscipline:
    def test_open_loop_passes_seeded_rng_only(self):
        """The generator draws only from the registry's seeded streams
        (and the other determinism rules hold too)."""
        src = (pathlib.Path(repro.__file__).resolve().parent
               / "workloads" / "open_loop.py")
        for rule in ("seeded-rng-only", "no-wallclock",
                     "units-discipline"):
            assert check_file(src, [get_rule(rule)]) == []
