"""Unit tests for the fault-injection subsystem itself: plan
validation/expansion, registry state machine, and injector scheduling
(no NVMe stack involved)."""

import pytest

from repro.faults import (FaultError, FaultEvent, FaultInjector,
                          FaultPlan, FaultPointRegistry)
from repro.sim import Simulator
from repro.sim.rng import RngRegistry


class TestFaultEvent:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultEvent(0, "meteor_strike", "link:host1")

    def test_rejects_negative_times_and_bad_probability(self):
        with pytest.raises(ValueError):
            FaultEvent(-1, "link_down", "link:host1")
        with pytest.raises(ValueError):
            FaultEvent(0, "link_down", "link:host1", duration_ns=-5)
        with pytest.raises(ValueError):
            FaultEvent(0, "tlp_drop", "link:host1", probability=1.5)

    def test_revert_event_inverse_actions(self):
        down = FaultEvent(100, "link_down", "link:h", duration_ns=50)
        up = down.revert_event()
        assert up == FaultEvent(150, "link_up", "link:h")

        stall = FaultEvent(10, "ctrl_stall", "ctrl:n", duration_ns=5)
        assert stall.revert_event().action == "ctrl_resume"

        drop = FaultEvent(0, "tlp_drop", "link:h", probability=0.3,
                          duration_ns=9)
        revert = drop.revert_event()
        assert revert.action == "tlp_drop"
        assert revert.probability == 0.0     # reverts to "no drops"

    def test_no_revert_for_permanent_or_kill(self):
        assert FaultEvent(0, "link_down", "link:h").revert_event() is None
        assert FaultEvent(0, "kill_client", "client:c",
                          duration_ns=99).revert_event() is None


class TestFaultPlan:
    def test_expanded_includes_reverts_sorted_stably(self):
        plan = FaultPlan((
            FaultEvent(300, "link_down", "link:a", duration_ns=100),
            FaultEvent(100, "ctrl_stall", "ctrl:n", duration_ns=300),
        ))
        times = [(ev.at_ns, ev.action) for ev in plan.expanded()]
        # Ties broken by plan position: link_down's revert was listed
        # first, so it fires first at t=400.
        assert times == [(100, "ctrl_stall"), (300, "link_down"),
                         (400, "link_up"), (400, "ctrl_resume")]

    def test_dict_roundtrip(self):
        plan = FaultPlan((
            FaultEvent(5, "tlp_delay", "link:a", delay_ns=7,
                       duration_ns=3),
            FaultEvent(9, "kill_client", "client:c"),
        ))
        assert FaultPlan.from_dicts(plan.as_dicts()) == plan

    def test_merged_and_targets(self):
        a = FaultPlan.link_flap("h1", at_ns=10, duration_ns=5)
        b = FaultPlan.kill("c1", at_ns=3)
        merged = a.merged(b)
        assert [ev.at_ns for ev in merged.events] == [3, 10]
        assert merged.targets() == ["client:c1", "link:h1"]

    def test_random_is_a_pure_function_of_seed(self):
        def make(seed):
            return FaultPlan.random(
                RngRegistry(seed), "chaos", horizon_ns=1_000_000,
                link_points=["link:a", "link:b"],
                ctrl_points=["ctrl:n"],
                client_points=["client:c1", "client:c2"],
                n_events=10, kill_at_most=2)

        assert make(42) == make(42)
        assert make(42) != make(43)

    def test_random_respects_bounds(self):
        plan = FaultPlan.random(
            RngRegistry(7), "chaos", horizon_ns=500_000,
            link_points=["link:a"], client_points=["client:c1"],
            n_events=20, max_outage_ns=1_000,
            max_drop_probability=0.02, kill_at_most=1)
        kills = [ev for ev in plan.events if ev.action == "kill_client"]
        assert len(kills) <= 1
        for ev in plan.events:
            assert 0 <= ev.at_ns < 500_000
            assert ev.probability <= 0.02
            if ev.action != "kill_client":
                assert ev.duration_ns < 1_000
        assert [ev.at_ns for ev in plan.events] == sorted(
            ev.at_ns for ev in plan.events)

    def test_random_with_no_points_is_empty(self):
        assert len(FaultPlan.random(RngRegistry(1), "s", 1000)) == 0


class TestRegistry:
    def make(self):
        sim = Simulator(seed=99)
        reg = FaultPointRegistry(sim)
        reg.register("link:a")
        reg.register("ctrl:n")
        return sim, reg

    def test_lookup_unknown_point_fails_with_roster(self):
        _, reg = self.make()
        with pytest.raises(FaultError, match="link:a"):
            reg.lookup("link:zzz")

    def test_link_state_and_blocked_query(self):
        _, reg = self.make()
        assert reg.link_blocked("a", "b") is None
        reg.set_link("link:a", False)
        assert reg.link_blocked("b", "a") == "link:a"
        reg.set_link("link:a", True)
        assert reg.link_blocked("a") is None

    def test_drop_degenerate_probabilities_are_deterministic(self):
        sim, reg = self.make()
        reg.set_drop("link:a", 1.0)
        assert reg.tlp_dropped(sim.rng, "a") == "link:a"
        reg.set_drop("link:a", 0.0)
        assert reg.tlp_dropped(sim.rng, "a") is None
        # unknown hosts never drop
        assert reg.tlp_dropped(sim.rng, "nobody") is None

    def test_delay_sums_across_points(self):
        _, reg = self.make()
        reg.register("link:b")
        reg.set_delay("link:a", 100)
        reg.set_delay("link:b", 50)
        assert reg.tlp_delay_ns("a", "b") == 150
        assert reg.tlp_delay_ns("a") == 100

    def test_mutator_validation(self):
        _, reg = self.make()
        with pytest.raises(FaultError):
            reg.set_drop("link:a", 1.5)
        with pytest.raises(FaultError):
            reg.set_delay("link:a", -1)
        with pytest.raises(FaultError):
            reg.set_abort("ctrl:n", -0.1)

    def test_stall_barrier_blocks_until_resume(self):
        sim, reg = self.make()
        log = []

        def worker():
            yield from reg.stall_barrier("ctrl:n")
            log.append(sim.now)

        reg.stall("ctrl:n")
        reg.stall("ctrl:n")      # idempotent
        sim.process(worker())

        def unstall():
            yield sim.timeout(500)
            reg.resume("ctrl:n")

        sim.process(unstall())
        sim.run(until=sim.timeout(1_000))
        assert log == [500]
        # Not stalled: the barrier is a no-op.
        sim.process(worker())
        sim.run(until=sim.timeout(1_100))
        assert len(log) == 2


class TestInjector:
    def test_plan_times_are_relative_to_start(self):
        sim = Simulator(seed=1)
        reg = FaultPointRegistry(sim)
        reg.register("link:a")
        plan = FaultPlan.link_flap("a", at_ns=100, duration_ns=50)
        inj = FaultInjector(sim, reg, plan)

        def late_start():
            yield sim.timeout(10_000)   # "bring-up" consumed sim time
            inj.start()

        sim.process(late_start())
        sim.run(until=sim.timeout(10_120))
        assert not reg.lookup("link:a").link_up      # down at +100
        sim.run(until=sim.timeout(100))
        assert reg.lookup("link:a").link_up          # back up at +150
        assert [ev.action for ev in inj.applied] == ["link_down",
                                                     "link_up"]

    def test_unknown_target_fails_before_any_time_passes(self):
        sim = Simulator(seed=1)
        reg = FaultPointRegistry(sim)
        plan = FaultPlan.kill("ghost", at_ns=5)
        inj = FaultInjector(sim, reg, plan)
        with pytest.raises(FaultError):
            inj.start()

    def test_kill_requires_crash_capable_object(self):
        sim = Simulator(seed=1)
        reg = FaultPointRegistry(sim)
        reg.register("client:c")     # no object behind it
        inj = FaultInjector(sim, reg, FaultPlan.kill("c", at_ns=0))
        inj.start()
        with pytest.raises(FaultError, match="crash-capable"):
            sim.run(until=sim.timeout(10))

    def test_start_is_idempotent(self):
        sim = Simulator(seed=1)
        reg = FaultPointRegistry(sim)
        reg.register("link:a")
        inj = FaultInjector(sim, reg,
                            FaultPlan.link_flap("a", at_ns=0,
                                                duration_ns=10))
        assert inj.start() is inj.start()
        sim.run(until=sim.timeout(100))
        assert inj.stats.get("link_down") == 1
