"""Tests for the SPDK-like local polling driver and media fault
injection through every layer."""

import dataclasses

import numpy as np
import pytest

from repro.config import MediaConfig, NvmeConfig, SimulationConfig
from repro.driver import BlockRequest, SpdkLocalDriver, StockNvmeDriver
from repro.nvme import Status
from repro.scenarios import ours_remote
from repro.scenarios.testbed import LocalTestbed
from repro.workloads import FioJob, run_fio


def make_spdk(seed=160, config=None):
    bed = LocalTestbed(seed=seed, config=config)
    drv = SpdkLocalDriver(bed.sim, bed.fabric, bed.host,
                          bed.nvme.bars[0].base, bed.config)
    bed.sim.run(until=bed.sim.process(drv.start()))
    return bed, drv


class TestSpdkLocalDriver:
    def test_roundtrip(self):
        bed, drv = make_spdk()
        payload = bytes(range(256)) * 16

        def flow(sim):
            req = yield from drv.io(BlockRequest("write", lba=5,
                                                 data=payload))
            assert req.ok
            req = yield from drv.io(BlockRequest("read", lba=5,
                                                 nblocks=8))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok and req.result == payload

    def test_faster_than_stock_kernel_driver(self):
        """Polling + userspace path beats IRQ + kernel path by >1 us."""
        bed_s, spdk = make_spdk(seed=161)
        spdk_med = run_fio(spdk, FioJob(rw="randread", total_ios=300,
                                        ramp_ios=20)).summary("read").median

        bed_k = LocalTestbed(seed=161)
        stock = StockNvmeDriver(bed_k.sim, bed_k.fabric, bed_k.host,
                                bed_k.nvme.bars[0].base, bed_k.config)
        bed_k.sim.run(until=bed_k.sim.process(stock.start()))
        stock_med = run_fio(stock, FioJob(rw="randread", total_ios=300,
                                          ramp_ios=20)
                            ).summary("read").median
        assert spdk_med < stock_med - 1_000

    def test_large_io_with_prp_list(self):
        bed, drv = make_spdk()
        payload = bytes((i * 7) % 256 for i in range(64 * 1024))

        def flow(sim):
            req = yield from drv.io(BlockRequest("write", lba=0,
                                                 data=payload))
            assert req.ok
            req = yield from drv.io(BlockRequest("read", lba=0,
                                                 nblocks=128))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok and req.result == payload


def faulty_config(read_rate=0.0, write_rate=0.0) -> SimulationConfig:
    base = SimulationConfig()
    media = dataclasses.replace(base.nvme.media,
                                read_error_rate=read_rate,
                                write_error_rate=write_rate)
    nvme = dataclasses.replace(base.nvme, media=media)
    return dataclasses.replace(base, nvme=nvme)


class TestFaultInjection:
    def test_read_errors_reach_block_layer(self):
        config = faulty_config(read_rate=0.2)
        bed, drv = make_spdk(seed=162, config=config)
        result = run_fio(drv, FioJob(rw="randread", total_ios=300))
        # ~20% of reads must fail, reported as errors not latencies.
        assert 25 <= result.errors <= 100
        assert result.ios == 300 - result.errors
        assert bed.nvme.media.media_errors == result.errors

    def test_write_fault_status_code(self):
        config = faulty_config(write_rate=1.0)   # every write fails
        bed, drv = make_spdk(seed=163, config=config)

        def flow(sim):
            req = yield from drv.io(BlockRequest("write", lba=0,
                                                 data=b"x" * 4096))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert not req.ok
        assert req.status == Status.WRITE_FAULT

    def test_read_error_status_code(self):
        config = faulty_config(read_rate=1.0)
        bed, drv = make_spdk(seed=164, config=config)

        def flow(sim):
            req = yield from drv.io(BlockRequest("read", lba=0,
                                                 nblocks=8))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert not req.ok
        assert req.status == Status.UNRECOVERED_READ_ERROR

    def test_failed_write_leaves_medium_unmodified(self):
        config = faulty_config(write_rate=1.0)
        bed, drv = make_spdk(seed=165, config=config)

        def flow(sim):
            req = yield from drv.io(BlockRequest("write", lba=0,
                                                 data=b"z" * 4096))
            return req

        bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert bed.nvme.namespaces[1].read_blocks(0, 8) == bytes(4096)

    def test_errors_propagate_through_distributed_driver(self):
        """Faults injected at the medium surface as statuses on a
        *remote* client — across the SQE/CQE path and the NTB."""
        config = faulty_config(read_rate=0.3)
        scenario = ours_remote(config=config, seed=166)
        result = run_fio(scenario.device,
                         FioJob(rw="randread", total_ios=200))
        assert result.errors > 20
        assert result.ios == 200 - result.errors

    def test_error_free_by_default(self):
        bed, drv = make_spdk(seed=167)
        result = run_fio(drv, FioJob(rw="randrw", total_ios=300))
        assert result.errors == 0
        assert bed.nvme.media.media_errors == 0
