"""Unit tests for Resource / Store / Signal primitives."""

import pytest

from repro.sim import Resource, Signal, Simulator, Store


@pytest.fixture()
def sim():
    return Simulator(seed=5)


class TestResource:
    def test_capacity_one_serialises(self, sim):
        res = Resource(sim, capacity=1)
        spans = []

        def worker(sim, tag):
            req = res.request()
            yield req
            start = sim.now
            yield sim.timeout(100)
            res.release(req)
            spans.append((tag, start, sim.now))

        for tag in range(3):
            sim.process(worker(sim, tag))
        sim.run()
        assert spans == [(0, 0, 100), (1, 100, 200), (2, 200, 300)]

    def test_capacity_n_allows_parallelism(self, sim):
        res = Resource(sim, capacity=2)
        finished = []

        def worker(sim, tag):
            req = res.request()
            yield req
            yield sim.timeout(100)
            res.release(req)
            finished.append((tag, sim.now))

        for tag in range(4):
            sim.process(worker(sim, tag))
        sim.run()
        assert finished == [(0, 100), (1, 100), (2, 200), (3, 200)]

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, capacity=1)
        grants = []

        def worker(sim, tag, arrive):
            yield sim.timeout(arrive)
            req = res.request()
            yield req
            grants.append(tag)
            yield sim.timeout(50)
            res.release(req)

        for tag, arrive in [(0, 0), (1, 5), (2, 10), (3, 12)]:
            sim.process(worker(sim, tag, arrive))
        sim.run()
        assert grants == [0, 1, 2, 3]

    def test_release_cancels_waiting_request(self, sim):
        res = Resource(sim, capacity=1)
        holder = res.request()  # granted instantly
        waiter = res.request()
        assert res.queued == 1
        res.release(waiter)  # cancel before grant
        assert res.queued == 0
        res.release(holder)
        assert res.count == 0

    def test_release_foreign_request_raises(self, sim):
        res1 = Resource(sim, capacity=1)
        res2 = Resource(sim, capacity=1)
        req = res1.request()
        with pytest.raises(RuntimeError):
            res2.release(req)

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_acquire_subgenerator(self, sim):
        res = Resource(sim, capacity=1)
        out = []

        def worker(sim):
            req = yield from res.acquire()
            out.append(sim.now)
            yield sim.timeout(10)
            res.release(req)

        sim.process(worker(sim))
        sim.process(worker(sim))
        sim.run()
        assert out == [0, 10]

    def test_context_manager_releases(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(sim, tag):
            with res.request() as req:
                yield req
                order.append(tag)
                yield sim.timeout(20)

        sim.process(worker(sim, "a"))
        sim.process(worker(sim, "b"))
        sim.run()
        assert order == ["a", "b"]
        assert res.count == 0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = []

        def getter(sim):
            got.append((yield store.get()))

        sim.process(getter(sim))
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def getter(sim):
            item = yield store.get()
            got.append((sim.now, item))

        def putter(sim):
            yield sim.timeout(40)
            store.put("late")

        sim.process(getter(sim))
        sim.process(putter(sim))
        sim.run()
        assert got == [(40, "late")]

    def test_fifo_ordering_of_items_and_getters(self, sim):
        store = Store(sim)
        got = []

        def getter(sim, tag):
            item = yield store.get()
            got.append((tag, item))

        sim.process(getter(sim, 0))
        sim.process(getter(sim, 1))

        def putter(sim):
            yield sim.timeout(1)
            store.put("first")
            store.put("second")

        sim.process(putter(sim))
        sim.run()
        assert got == [(0, "first"), (1, "second")]

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put(1)
        assert len(store) == 1
        assert store.try_get() == 1
        assert store.try_get() is None


class TestSignal:
    def test_fire_wakes_all_waiters(self, sim):
        sig = Signal(sim)
        woken = []

        def waiter(sim, tag):
            value = yield sig.wait()
            woken.append((tag, sim.now, value))

        for tag in range(3):
            sim.process(waiter(sim, tag))

        def firer(sim):
            yield sim.timeout(25)
            sig.fire("edge")

        sim.process(firer(sim))
        sim.run()
        assert woken == [(0, 25, "edge"), (1, 25, "edge"), (2, 25, "edge")]

    def test_each_wait_sees_one_fire(self, sim):
        sig = Signal(sim)
        counts = []

        def waiter(sim):
            seen = 0
            for _ in range(2):
                yield sig.wait()
                seen += 1
            counts.append(seen)

        def firer(sim):
            for _ in range(2):
                yield sim.timeout(10)
                sig.fire()

        sim.process(waiter(sim))
        sim.process(firer(sim))
        sim.run()
        assert counts == [2]
        assert sig.fires == 2

    def test_fire_with_no_waiters_is_noop(self, sim):
        sig = Signal(sim)
        sig.fire()
        assert sig.fires == 1
