"""Tests for the realistic-workload pattern layer."""

import numpy as np
import pytest

from repro.scenarios import ours_remote
from repro.sim import Simulator
from repro.workloads import (BurstyArrivals, MixedBlockProfile, PROFILES,
                             ZipfianAccess, run_pattern)


class TestZipfianAccess:
    def test_skewed_popularity(self):
        sim = Simulator(seed=300)
        rng = sim.rng.stream("z")
        access = ZipfianAccess(region_lbas=8192 * 8, alpha=1.3,
                               hot_slots=512)
        sample = access.sampler(rng, lba_per_io=8)
        draws = np.array([sample() for _ in range(4000)])
        values, counts = np.unique(draws, return_counts=True)
        counts = np.sort(counts)[::-1]
        # Top 10% of blocks get the majority of accesses.
        top = counts[: max(1, len(counts) // 10)].sum()
        assert top > 0.45 * counts.sum()
        # All draws are aligned and in range.
        assert (draws % 8 == 0).all()
        assert draws.max() < 8192 * 8

    def test_region_too_small(self):
        sim = Simulator(seed=301)
        access = ZipfianAccess(region_lbas=4)
        with pytest.raises(ValueError):
            access.sampler(sim.rng.stream("z"), lba_per_io=8)


class TestBurstyArrivals:
    def test_burst_stats(self):
        sim = Simulator(seed=302)
        rng = sim.rng.stream("b")
        arrivals = BurstyArrivals(burst_len_mean=8.0,
                                  think_time_mean_ns=100_000)
        bursts, thinks = zip(*(arrivals.next_burst(rng)
                               for _ in range(2000)))
        assert 6 < np.mean(bursts) < 10
        assert 80_000 < np.mean(thinks) < 120_000
        assert min(bursts) >= 1


class TestProfiles:
    def test_presets_exist(self):
        assert set(PROFILES) == {"oltp", "webserver", "backup"}

    def test_profile_sampler_respects_mix(self):
        sim = Simulator(seed=303)
        rng = sim.rng.stream("p")
        sample = PROFILES["webserver"].sampler(rng)
        draws = [sample() for _ in range(3000)]
        sizes = np.array([d[0] for d in draws])
        reads = np.array([d[1] for d in draws])
        assert 0.55 < np.mean(sizes == 4096) < 0.75
        assert np.mean(reads) > 0.95

    def test_oltp_mix(self):
        sim = Simulator(seed=304)
        sample = PROFILES["oltp"].sampler(sim.rng.stream("p"))
        draws = [sample() for _ in range(2000)]
        assert all(d[0] == 8192 for d in draws)
        assert 0.62 < np.mean([d[1] for d in draws]) < 0.78


class TestRunPattern:
    def test_oltp_on_remote_device(self):
        scenario = ours_remote(seed=305)
        result = run_pattern(scenario.device, PROFILES["oltp"],
                             total_ios=200,
                             access=ZipfianAccess(region_lbas=1 << 20),
                             concurrency=4)
        assert result.ios == 200
        assert result.errors == 0
        assert result.iops > 0
        assert len(result.latencies) == 200

    def test_bursty_load_stretches_wall_clock(self):
        closed = run_pattern(ours_remote(seed=306).device,
                             PROFILES["oltp"], total_ios=100,
                             concurrency=2)
        bursty = run_pattern(ours_remote(seed=306).device,
                             PROFILES["oltp"], total_ios=100,
                             arrivals=BurstyArrivals(
                                 burst_len_mean=4,
                                 think_time_mean_ns=500_000),
                             concurrency=2)
        assert bursty.elapsed_ns > closed.elapsed_ns
        assert bursty.iops < closed.iops

    def test_backup_profile_moves_big_blocks(self):
        scenario = ours_remote(seed=307)
        result = run_pattern(scenario.device, PROFILES["backup"],
                             total_ios=40, concurrency=4)
        assert result.bytes_moved == 40 * 131072
        assert result.errors == 0

    def test_custom_profile(self):
        profile = MixedBlockProfile("tiny", ((512, 1.0, 0.5),))
        scenario = ours_remote(seed=308)
        result = run_pattern(scenario.device, profile, total_ios=60)
        assert result.ios == 60
