"""Remote device-generated interrupts through NTB windows — the paper's
"future work" implemented and quantified."""

import numpy as np
import pytest

from repro.driver import (BlockRequest, ClientError,
                          DistributedNvmeClient, NvmeManager)
from repro.scenarios.testbed import PcieTestbed
from repro.workloads import FioJob, run_fio


def make_client(completion_mode, seed=280, host_index=1):
    bed = PcieTestbed(n_hosts=2, with_nvme=True, seed=seed)
    manager = NvmeManager(bed.sim, bed.smartio, bed.node(0),
                          bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(manager.start()))
    client = DistributedNvmeClient(bed.sim, bed.smartio,
                                   bed.node(host_index),
                                   bed.nvme_device_id, bed.config,
                                   completion_mode=completion_mode)
    bed.sim.run(until=bed.sim.process(client.start()))
    return bed, client


class TestRemoteInterrupts:
    def test_validation(self):
        bed = PcieTestbed(n_hosts=2, with_nvme=True, seed=281)
        with pytest.raises(ClientError):
            DistributedNvmeClient(bed.sim, bed.smartio, bed.node(1),
                                  bed.nvme_device_id, bed.config,
                                  completion_mode="bogus")
        with pytest.raises(ClientError):
            DistributedNvmeClient(bed.sim, bed.smartio, bed.node(1),
                                  bed.nvme_device_id, bed.config,
                                  completion_mode="interrupt",
                                  cq_placement="device")

    def test_interrupt_mode_roundtrip(self):
        bed, client = make_client("interrupt")
        payload = bytes((i * 3) % 256 for i in range(4096))

        def flow(sim):
            req = yield client.submit(BlockRequest("write", lba=32,
                                                   data=payload))
            assert req.ok
            req = yield client.submit(BlockRequest("read", lba=32,
                                                   nblocks=8))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok and req.result == payload

    def test_msix_entry_programmed_with_window_address(self):
        bed, client = make_client("interrupt", seed=282)
        entry = bed.nvme.msix[client.qid]
        assert not entry.masked
        assert entry.data == client.qid
        # The address must be a device-side NTB window (it resolves to
        # the client's mailbox).
        res = bed.fabric.resolve(bed.hosts[0], entry.addr, 4)
        assert res.host is bed.hosts[1]
        assert res.addr == client._irq_mailbox

    def test_interrupts_slower_than_polling(self):
        """The cost of the extension: IRQ latency on every completion.
        Polling stays the right default for latency (why the paper's
        driver polls); interrupts free the CPU instead."""
        _bed1, poller = make_client("poll", seed=283)
        poll_med = run_fio(poller, FioJob(rw="randread", total_ios=300,
                                          ramp_ios=30)
                           ).summary("read").median
        _bed2, intr = make_client("interrupt", seed=283)
        intr_med = run_fio(intr, FioJob(rw="randread", total_ios=300,
                                        ramp_ios=30)
                           ).summary("read").median
        # Interrupt path replaces ~90ns median poll delay with ~1.2 us
        # IRQ latency (+ the MSI write's NTB crossing).
        assert 800 < intr_med - poll_med < 3_000

    def test_interrupt_mode_under_queue_depth(self):
        bed, client = make_client("interrupt", seed=284)
        result = run_fio(client, FioJob(rw="randread", iodepth=8,
                                        total_ios=200))
        assert result.errors == 0
        assert result.ios == 200

    def test_local_client_with_interrupts(self):
        bed, client = make_client("interrupt", seed=285, host_index=0)
        result = run_fio(client, FioJob(rw="randread", total_ios=100))
        assert result.errors == 0
