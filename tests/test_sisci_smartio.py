"""Tests for SISCI segments and the SmartIO service over a real testbed."""

import pytest

from repro.scenarios.testbed import PcieTestbed
from repro.sisci import SisciError
from repro.smartio import (AccessHints, CQ_HINTS, Placement, SQ_HINTS,
                           SmartIoError)


@pytest.fixture()
def bed():
    return PcieTestbed(n_hosts=3, with_nvme=True)


class TestSegments:
    def test_create_and_local_access(self, bed):
        node = bed.node(1)
        seg = node.create_segment(10, 4096)
        seg.write(0, b"local-bytes")
        assert seg.read(0, 11) == b"local-bytes"

    def test_duplicate_segment_id_rejected(self, bed):
        node = bed.node(1)
        node.create_segment(10, 4096)
        with pytest.raises(SisciError):
            node.create_segment(10, 4096)

    def test_connect_requires_available(self, bed):
        owner, peer = bed.node(1), bed.node(2)
        seg = owner.create_segment(11, 4096)
        with pytest.raises(SisciError):
            peer.connect_segment(owner.node_id, 11)
        seg.set_available()
        conn = peer.connect_segment(owner.node_id, 11)
        assert conn.size == 4096

    def test_connect_unknown_segment(self, bed):
        with pytest.raises(SisciError):
            bed.node(1).connect_segment(99, 1)

    def test_remote_write_lands_in_owner_memory(self, bed):
        owner, peer = bed.node(1), bed.node(2)
        seg = owner.create_segment(12, 4096)
        seg.set_available()
        conn = peer.connect_segment(owner.node_id, 12)

        def proc(sim):
            yield from conn.write_wait(0x80, b"hello-over-ntb")

        bed.sim.process(proc(bed.sim))
        bed.sim.run()
        assert seg.read(0x80, 14) == b"hello-over-ntb"

    def test_remote_read_sees_owner_writes(self, bed):
        owner, peer = bed.node(1), bed.node(2)
        seg = owner.create_segment(13, 4096)
        seg.set_available()
        seg.write(0, b"owner-data")
        conn = peer.connect_segment(owner.node_id, 13)
        out = {}

        def proc(sim):
            start = sim.now
            data = yield from conn.read(0, 10)
            out["data"] = data
            out["elapsed"] = sim.now - start

        bed.sim.process(proc(bed.sim))
        bed.sim.run()
        assert out["data"] == b"owner-data"
        # remote read = full round trip across 3 chips each way
        assert out["elapsed"] > 600

    def test_same_host_connection_is_direct(self, bed):
        node = bed.node(1)
        seg = node.create_segment(14, 4096)
        seg.set_available()
        conn = node.connect_segment(node.node_id, 14)
        assert conn.map_addr == seg.phys_addr
        assert node.ntb.window_count() == 0

    def test_bounds_enforced(self, bed):
        owner, peer = bed.node(1), bed.node(2)
        seg = owner.create_segment(15, 4096)
        seg.set_available()
        conn = peer.connect_segment(owner.node_id, 15)
        with pytest.raises(SisciError):
            conn.write(4090, b"too-long")

        def proc(sim):
            yield from conn.read(4095, 2)

        p = bed.sim.process(proc(bed.sim))
        with pytest.raises(SisciError):
            bed.sim.run()

    def test_disconnect_releases_window(self, bed):
        owner, peer = bed.node(1), bed.node(2)
        seg = owner.create_segment(16, 4096)
        seg.set_available()
        conn = peer.connect_segment(owner.node_id, 16)
        assert peer.ntb.window_count() == 1
        conn.disconnect()
        assert peer.ntb.window_count() == 0

    def test_remove_blocks_while_connected(self, bed):
        owner, peer = bed.node(1), bed.node(2)
        seg = owner.create_segment(17, 4096)
        seg.set_available()
        conn = peer.connect_segment(owner.node_id, 17)
        with pytest.raises(SisciError):
            seg.remove()
        conn.disconnect()
        seg.remove()
        with pytest.raises(SisciError):
            peer.connect_segment(owner.node_id, 17)


class TestSmartIoRegistry:
    def test_device_registered_with_location(self, bed):
        devices = bed.smartio.list_devices()
        assert len(devices) == 1
        device_id, name, host_name = devices[0]
        assert name == "nvme0"
        assert host_name == "host0"
        assert bed.smartio.device_host_name(device_id) == "host0"

    def test_unknown_device(self, bed):
        with pytest.raises(SmartIoError):
            bed.smartio.acquire(999, bed.node(1))

    def test_map_remote_bar(self, bed):
        ref = bed.smartio.acquire(bed.nvme_device_id, bed.node(1))
        window = ref.map_bar(0)
        # Read the CAP register through the NTB mapping.
        out = {}

        def proc(sim):
            data = yield from bed.fabric.read(bed.hosts[1].rc,
                                              bed.hosts[1], window, 8)
            out["cap"] = int.from_bytes(data, "little")

        bed.sim.process(proc(bed.sim))
        bed.sim.run()
        assert out["cap"] & 0xFFFF == 1023   # MQES

    def test_map_local_bar_is_direct(self, bed):
        ref = bed.smartio.acquire(bed.nvme_device_id, bed.node(0))
        assert ref.map_bar(0) == bed.nvme.bars[0].base


class TestAcquisition:
    def test_exclusive_blocks_others(self, bed):
        ref = bed.smartio.acquire(bed.nvme_device_id, bed.node(0),
                                  exclusive=True)
        with pytest.raises(SmartIoError):
            bed.smartio.acquire(bed.nvme_device_id, bed.node(1))
        ref.downgrade()
        other = bed.smartio.acquire(bed.nvme_device_id, bed.node(1))
        assert other is not None

    def test_exclusive_needs_no_other_refs(self, bed):
        ref1 = bed.smartio.acquire(bed.nvme_device_id, bed.node(1))
        with pytest.raises(SmartIoError):
            bed.smartio.acquire(bed.nvme_device_id, bed.node(0),
                                exclusive=True)
        ref1.release()
        ref2 = bed.smartio.acquire(bed.nvme_device_id, bed.node(0),
                                   exclusive=True)
        assert ref2.exclusive

    def test_release_cleans_windows(self, bed):
        ref = bed.smartio.acquire(bed.nvme_device_id, bed.node(1))
        ref.map_bar(0)
        assert bed.ntbs[1].window_count() == 1
        ref.release()
        assert bed.ntbs[1].window_count() == 0
        with pytest.raises(SmartIoError):
            ref.map_bar(0)

    def test_double_release_is_noop(self, bed):
        ref = bed.smartio.acquire(bed.nvme_device_id, bed.node(1))
        ref.release()
        ref.release()


class TestDmaWindows:
    def test_segment_local_to_device_is_direct(self, bed):
        ref = bed.smartio.acquire(bed.nvme_device_id, bed.node(0))
        seg = bed.node(0).create_segment(30, 8192)
        seg.set_available()
        addr = ref.map_segment_for_device(seg)
        assert addr == seg.phys_addr
        assert bed.ntbs[0].window_count() == 0

    def test_remote_segment_gets_device_side_window(self, bed):
        """The device's DMA reaches a client-host segment through a
        window on the *device host's* NTB."""
        ref = bed.smartio.acquire(bed.nvme_device_id, bed.node(1))
        seg = bed.node(1).create_segment(31, 8192)
        seg.set_available()
        dev_addr = ref.map_segment_for_device(seg)
        assert bed.ntbs[0].window_count() == 1   # device-side NTB
        # Let the device (nvme function) DMA-write through it.
        ctrl = bed.nvme

        def proc(sim):
            yield from ctrl.fabric.write(ctrl.node, ctrl.host, dev_addr,
                                         b"device-sees-remote")

        bed.sim.process(proc(bed.sim))
        bed.sim.run()
        assert seg.read(0, 18) == b"device-sees-remote"


class TestHints:
    def test_placement_rules(self):
        assert SQ_HINTS.placement() is Placement.DEVICE_SIDE
        assert CQ_HINTS.placement() is Placement.CPU_SIDE
        both = AccessHints(device_reads=True, device_writes=True)
        assert both.placement() is Placement.CPU_SIDE
        cpu_polls = AccessHints(cpu_reads=True)
        assert cpu_polls.placement() is Placement.CPU_SIDE
        cpu_pushes = AccessHints(cpu_writes=True)
        assert cpu_pushes.placement() is Placement.DEVICE_SIDE

    def test_hinted_allocation_sq_lands_device_side(self, bed):
        seg = bed.smartio.alloc_segment_hinted(
            bed.node(2), bed.nvme_device_id, 4096, SQ_HINTS)
        assert seg.host is bed.hosts[0]          # device host
        assert seg.available

    def test_hinted_allocation_cq_lands_cpu_side(self, bed):
        seg = bed.smartio.alloc_segment_hinted(
            bed.node(2), bed.nvme_device_id, 4096, CQ_HINTS)
        assert seg.host is bed.hosts[2]          # requesting host

    def test_hinted_ids_unique(self, bed):
        a = bed.smartio.alloc_segment_hinted(bed.node(1),
                                             bed.nvme_device_id, 4096,
                                             CQ_HINTS)
        b = bed.smartio.alloc_segment_hinted(bed.node(1),
                                             bed.nvme_device_id, 4096,
                                             CQ_HINTS)
        assert a.id != b.id
