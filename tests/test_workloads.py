"""Tests for the fio-like workload generator."""

import numpy as np
import pytest

from repro.scenarios import local_linux, ours_remote
from repro.workloads import FioJob, FioResult, run_fio, run_fio_many


class TestJobValidation:
    def test_bad_rw(self):
        with pytest.raises(ValueError):
            FioJob(rw="randtrim")

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            FioJob(bs=0)
        with pytest.raises(ValueError):
            FioJob(iodepth=0)

    def test_needs_stop_condition(self):
        with pytest.raises(ValueError):
            FioJob(total_ios=None, runtime_ns=None)

    def test_bad_mix(self):
        with pytest.raises(ValueError):
            FioJob(rw="randrw", rwmixread=150)


class TestRunFio:
    def test_randread_collects_latencies(self):
        scenario = local_linux(seed=11)
        result = run_fio(scenario.device,
                         FioJob(rw="randread", total_ios=300))
        assert result.ios == 300
        assert len(result.read_latencies) == 300
        assert len(result.write_latencies) == 0
        assert result.bytes_moved == 300 * 4096
        assert result.errors == 0
        assert result.iops > 0

    def test_randwrite(self):
        scenario = local_linux(seed=12)
        result = run_fio(scenario.device,
                         FioJob(rw="randwrite", total_ios=100))
        assert len(result.write_latencies) == 100

    def test_randrw_mix(self):
        scenario = local_linux(seed=13)
        result = run_fio(scenario.device,
                         FioJob(rw="randrw", rwmixread=70,
                                total_ios=400))
        reads = len(result.read_latencies)
        writes = len(result.write_latencies)
        assert reads + writes == 400
        assert 0.55 < reads / 400 < 0.85   # ~70% with sampling noise

    def test_sequential_mode_walks_lbas(self):
        scenario = local_linux(seed=14)
        result = run_fio(scenario.device,
                         FioJob(rw="write", total_ios=16, verify=True))
        assert result.errors == 0

    def test_runtime_bound(self):
        scenario = local_linux(seed=15)
        start = scenario.sim.now
        result = run_fio(scenario.device,
                         FioJob(rw="randread", total_ios=None,
                                runtime_ns=2_000_000))
        assert result.elapsed_ns >= 2_000_000
        # ~12us per IO -> ~160 IOs in 2ms
        assert 80 < result.ios < 300

    def test_ramp_excluded(self):
        scenario = local_linux(seed=16)
        result = run_fio(scenario.device,
                         FioJob(rw="randread", total_ios=100,
                                ramp_ios=20))
        assert len(result.read_latencies) == 80

    def test_iodepth_increases_throughput(self):
        qd1 = run_fio(local_linux(seed=17).device,
                      FioJob(rw="randread", total_ios=400, iodepth=1))
        qd8 = run_fio(local_linux(seed=17).device,
                      FioJob(rw="randread", total_ios=400, iodepth=8))
        assert qd8.iops > 2.5 * qd1.iops

    def test_verify_mode_passes_on_honest_device(self):
        scenario = ours_remote(seed=18)
        result = run_fio(scenario.device,
                         FioJob(rw="randwrite", total_ios=60,
                                verify=True, region_lbas=10_000))
        assert result.errors == 0

    def test_region_bound_respected(self):
        scenario = local_linux(seed=19)
        result = run_fio(scenario.device,
                         FioJob(rw="randwrite", total_ios=50,
                                region_lbas=64))
        # All writes landed within the first 64 LBAs x 512 B = 4 extents.
        ns = scenario.testbed.nvme.namespaces[1]
        assert ns.written_bytes() <= 8 * 4096

    def test_bs_must_be_lba_multiple(self):
        scenario = local_linux(seed=20)
        with pytest.raises(ValueError):
            run_fio(scenario.device, FioJob(bs=1000, total_ios=10))

    def test_latency_distribution_converges(self):
        """Two different-length runs agree on the median within noise —
        the justification for simulating less than the paper's 60 s."""
        short = run_fio(local_linux(seed=21).device,
                        FioJob(rw="randread", total_ios=300))
        long = run_fio(local_linux(seed=22).device,
                       FioJob(rw="randread", total_ios=1500))
        med_s = short.summary("read").median
        med_l = long.summary("read").median
        assert abs(med_s - med_l) / med_l < 0.03


class TestRunMany:
    def test_simultaneous_jobs_share_clock(self):
        from repro.scenarios import multihost
        scenario = multihost(2, seed=23)
        jobs = [(c, FioJob(name=f"j{i}", rw="randread", total_ios=100))
                for i, c in enumerate(scenario.clients)]
        results = run_fio_many(jobs)
        assert len(results) == 2
        assert all(r.ios == 100 for r in results)

    def test_empty(self):
        assert run_fio_many([]) == []

    def test_mixed_sims_rejected(self):
        a = local_linux(seed=24)
        b = local_linux(seed=25)
        with pytest.raises(ValueError):
            run_fio_many([(a.device, FioJob(total_ios=1)),
                          (b.device, FioJob(total_ios=1))])
