"""Unit tests for host memory, watchpoints and the range allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import HostMemory, MemoryError_, OutOfSpace, RangeAllocator
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=9)


@pytest.fixture()
def mem(sim):
    return HostMemory(sim, size=64 * 1024, base=0x1000_0000, name="t")


class TestHostMemory:
    def test_roundtrip(self, mem):
        mem.write(0x1000_0100, b"hello world")
        assert mem.read(0x1000_0100, 11) == b"hello world"

    def test_zero_initialised(self, mem):
        assert mem.read(0x1000_0000, 16) == bytes(16)

    def test_bounds_checked(self, mem):
        with pytest.raises(MemoryError_):
            mem.read(0x0FFF_FFFF, 4)
        with pytest.raises(MemoryError_):
            mem.read(mem.end - 2, 4)
        with pytest.raises(MemoryError_):
            mem.write(mem.end, b"x")

    def test_u32_u64_helpers(self, mem):
        mem.write_u32(0x1000_0000, 0xDEADBEEF)
        assert mem.read_u32(0x1000_0000) == 0xDEADBEEF
        mem.write_u64(0x1000_0008, 0x1122334455667788)
        assert mem.read_u64(0x1000_0008) == 0x1122334455667788
        # little-endian layout
        assert mem.read(0x1000_0000, 4) == bytes([0xEF, 0xBE, 0xAD, 0xDE])

    def test_u32_masks_high_bits(self, mem):
        mem.write_u32(0x1000_0000, 0x1_0000_0001)
        assert mem.read_u32(0x1000_0000) == 1

    def test_fill(self, mem):
        mem.fill(0x1000_0000, 8, 0xAB)
        assert mem.read(0x1000_0000, 8) == b"\xab" * 8

    def test_contains(self, mem):
        assert mem.contains(0x1000_0000, 64 * 1024)
        assert not mem.contains(0x1000_0000, 64 * 1024 + 1)
        assert not mem.contains(0x0)

    @given(st.integers(0, 65535 - 64), st.binary(min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_write_read_property(self, offset, payload):
        sim = Simulator(seed=1)
        mem = HostMemory(sim, size=64 * 1024, base=0x1000_0000)
        mem.write(0x1000_0000 + offset, payload)
        assert mem.read(0x1000_0000 + offset, len(payload)) == payload


class TestWatchpoints:
    def test_write_fires_overlapping_watchpoint(self, sim, mem):
        wp = mem.watch(0x1000_0100, 16)
        woken = []

        def poller(sim):
            value = yield wp.signal.wait()
            woken.append((sim.now, value))

        sim.process(poller(sim))

        def writer(sim):
            yield sim.timeout(50)
            mem.write(0x1000_0108, b"\x01")

        sim.process(writer(sim))
        sim.run()
        assert woken == [(50, (0x1000_0108, 0x1000_0109))]

    def test_non_overlapping_write_does_not_fire(self, sim, mem):
        wp = mem.watch(0x1000_0100, 16)
        mem.write(0x1000_0110, b"x")   # adjacent, not inside
        mem.write(0x1000_00FF, b"x")   # just below
        assert wp.signal.fires == 0
        mem.write(0x1000_010F, b"x")   # last byte inside
        assert wp.signal.fires == 1

    def test_unwatch(self, sim, mem):
        wp = mem.watch(0x1000_0000, 4)
        mem.unwatch(wp)
        mem.write(0x1000_0000, b"\x01")
        assert wp.signal.fires == 0

    def test_watch_out_of_bounds_rejected(self, mem):
        with pytest.raises(MemoryError_):
            mem.watch(mem.end - 1, 2)


class TestRangeAllocator:
    def test_alloc_free_reuse(self):
        alloc = RangeAllocator(0x1000, 0x1000)
        a = alloc.alloc(0x100)
        b = alloc.alloc(0x100)
        assert a == 0x1000 and b == 0x1100
        alloc.free(a)
        c = alloc.alloc(0x80)
        assert c == 0x1000  # first fit reuses the hole

    def test_alignment(self):
        alloc = RangeAllocator(0x1001, 0x10000)
        a = alloc.alloc(0x10, alignment=0x100)
        assert a % 0x100 == 0
        assert a >= 0x1001

    def test_exhaustion(self):
        alloc = RangeAllocator(0, 0x100)
        alloc.alloc(0x100)
        with pytest.raises(OutOfSpace):
            alloc.alloc(1)

    def test_coalescing(self):
        alloc = RangeAllocator(0, 0x300)
        a = alloc.alloc(0x100)
        b = alloc.alloc(0x100)
        c = alloc.alloc(0x100)
        alloc.free(a)
        alloc.free(c)
        alloc.free(b)  # middle free must merge with both neighbours
        assert alloc.free_bytes == 0x300
        assert alloc.alloc(0x300) == 0  # whole range again

    def test_double_free_rejected(self):
        alloc = RangeAllocator(0, 0x100)
        a = alloc.alloc(0x10)
        alloc.free(a)
        with pytest.raises(ValueError):
            alloc.free(a)

    def test_invalid_args(self):
        alloc = RangeAllocator(0, 0x100)
        with pytest.raises(ValueError):
            alloc.alloc(0)
        with pytest.raises(ValueError):
            alloc.alloc(8, alignment=3)
        with pytest.raises(ValueError):
            RangeAllocator(0, 0)

    def test_accounting(self):
        alloc = RangeAllocator(0, 0x1000)
        a = alloc.alloc(0x200)
        assert alloc.allocated_bytes == 0x200
        assert alloc.free_bytes == 0xE00
        assert alloc.owns(a)
        assert alloc.allocation_size(a) == 0x200
        assert not alloc.owns(a + 1)

    @given(st.lists(st.integers(1, 128), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_alloc_all_free_all_restores_capacity(self, sizes):
        alloc = RangeAllocator(0x4000, 64 * 1024)
        addrs = []
        for size in sizes:
            addrs.append(alloc.alloc(size, alignment=1))
        # no overlaps
        spans = sorted((a, a + s) for a, s in zip(addrs, sizes))
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        for addr in addrs:
            alloc.free(addr)
        assert alloc.free_bytes == 64 * 1024
