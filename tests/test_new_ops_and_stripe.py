"""Tests for Write Zeroes / Compare commands and the striping layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.driver import (BlockError, BlockRequest, DistributedNvmeClient,
                          NvmeManager, StripedBlockDevice)
from repro.nvme import Status
from repro.scenarios import ours_remote
from repro.scenarios.testbed import PcieTestbed
from repro.workloads import FioJob, run_fio


class TestWriteZeroes:
    def test_zeroes_previously_written_range(self):
        scenario = ours_remote(seed=220)
        dev = scenario.device

        def flow(sim):
            req = yield dev.submit(BlockRequest("write", lba=0,
                                                data=b"\xff" * 4096))
            assert req.ok
            req = yield dev.submit(BlockRequest("write_zeroes", lba=0,
                                                nblocks=8))
            assert req.ok
            req = yield dev.submit(BlockRequest("read", lba=0, nblocks=8))
            return req

        req = scenario.sim.run(until=scenario.sim.process(flow(scenario.sim)))
        assert req.ok and req.result == bytes(4096)

    def test_no_data_allowed(self):
        with pytest.raises(BlockError):
            BlockRequest("write_zeroes", lba=0)   # nblocks missing

    def test_out_of_range(self):
        scenario = ours_remote(seed=221)
        dev = scenario.device

        def flow(sim):
            req = yield dev.submit(BlockRequest(
                "write_zeroes", lba=dev.capacity_lbas - 4, nblocks=8))
            return req

        with pytest.raises(BlockError):
            dev.submit(BlockRequest("write_zeroes",
                                    lba=dev.capacity_lbas - 4, nblocks=8))


class TestCompare:
    def test_compare_matches(self):
        scenario = ours_remote(seed=222)
        dev = scenario.device
        payload = bytes(range(256)) * 16

        def flow(sim):
            req = yield dev.submit(BlockRequest("write", lba=8,
                                                data=payload))
            assert req.ok
            req = yield dev.submit(BlockRequest("compare", lba=8,
                                                data=payload))
            return req

        req = scenario.sim.run(until=scenario.sim.process(flow(scenario.sim)))
        assert req.ok

    def test_compare_mismatch_status(self):
        scenario = ours_remote(seed=223)
        dev = scenario.device

        def flow(sim):
            req = yield dev.submit(BlockRequest("write", lba=8,
                                                data=b"\x01" * 4096))
            assert req.ok
            req = yield dev.submit(BlockRequest("compare", lba=8,
                                                data=b"\x02" * 4096))
            return req

        req = scenario.sim.run(until=scenario.sim.process(flow(scenario.sim)))
        assert not req.ok
        assert req.status == Status.COMPARE_FAILURE

    def test_compare_requires_data(self):
        with pytest.raises(BlockError):
            BlockRequest("compare", lba=0)


def build_striped(n_devices=2, seed=230, stripe_lbas=8):
    """One client host with queue pairs on N controllers, each living in
    a different cluster host, composed into a RAID-0."""
    bed = PcieTestbed(n_hosts=n_devices + 1, with_nvme=False, seed=seed)
    members = []
    client_node = bed.node(n_devices)    # last host is the client
    for i in range(n_devices):
        ctrl = bed.install_nvme(i)
        device_id = bed.smartio.register_device.__self__ and None
        # install_nvme registered it; find its id (registration order).
        device_id = i + 1
        manager = NvmeManager(bed.sim, bed.smartio, bed.node(i),
                              device_id, bed.config)
        bed.sim.run(until=bed.sim.process(manager.start()))
        client = DistributedNvmeClient(
            bed.sim, bed.smartio, client_node, device_id, bed.config,
            slot_index=0, name=f"member{i}")
        bed.sim.run(until=bed.sim.process(client.start()))
        members.append(client)
    md = StripedBlockDevice(bed.sim, members, stripe_lbas=stripe_lbas)
    return bed, md, members


class TestStripedDevice:
    def test_geometry(self):
        bed, md, members = build_striped()
        assert md.capacity_lbas == 2 * members[0].capacity_lbas
        assert md.lba_bytes == 512

    def test_validation(self):
        bed, md, members = build_striped()
        with pytest.raises(BlockError):
            StripedBlockDevice(bed.sim, members[:1])
        with pytest.raises(BlockError):
            StripedBlockDevice(bed.sim, members, stripe_lbas=0)

    def test_roundtrip_spanning_stripes(self):
        bed, md, members = build_striped(stripe_lbas=8)
        payload = bytes((i * 17) % 256 for i in range(6 * 4096))

        def flow(sim):
            req = yield md.submit(BlockRequest("write", lba=4,
                                               data=payload))
            assert req.ok
            req = yield md.submit(BlockRequest("read", lba=4,
                                               nblocks=48))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok
        assert req.result == payload

    def test_data_actually_striped_across_devices(self):
        bed, md, members = build_striped(stripe_lbas=8)
        payload = b"A" * 4096 + b"B" * 4096   # two stripes

        def flow(sim):
            req = yield md.submit(BlockRequest("write", lba=0,
                                               data=payload))
            assert req.ok

        bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        # stripe 0 -> device 0 lba 0; stripe 1 -> device 1 lba 0.
        ns0 = bed.hosts[0].functions[1].namespaces[1]
        ns1 = bed.hosts[1].functions[1].namespaces[1]
        assert ns0.read_blocks(0, 8) == b"A" * 4096
        assert ns1.read_blocks(0, 8) == b"B" * 4096

    def test_flush_fans_out(self):
        bed, md, members = build_striped()

        def flow(sim):
            req = yield md.submit(BlockRequest("flush"))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok

    def test_throughput_additive(self):
        """Large sequential reads hit both devices: bandwidth well above
        a single member's media limit."""
        bed, md, members = build_striped(stripe_lbas=64, seed=231)
        result = run_fio(md, FioJob(rw="read", bs=128 * 1024, iodepth=8,
                                    total_ios=100, region_lbas=1 << 20))
        single_member_cap = 2.5e9
        assert result.bandwidth_bytes_per_s > 1.25 * single_member_cap

    @given(st.integers(0, 200), st.integers(1, 64))
    @settings(max_examples=30, deadline=None)
    def test_split_covers_extent_exactly(self, lba, nblocks):
        chunks = StripedBlockDevice._split(
            _GeometryOnly(stripe_lbas=8, members=3, lba_bytes=512),
            lba, nblocks)
        total = sum(c.nblocks for c in chunks)
        assert total == nblocks
        offsets = [c.offset_bytes for c in chunks]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0
        # chunks never cross a stripe boundary
        for c in chunks:
            within = c.device_lba % 8
            assert within + c.nblocks <= 8


class _GeometryOnly:
    """Duck-typed stand-in so _split can be property-tested directly."""

    def __init__(self, stripe_lbas, members, lba_bytes):
        self.stripe_lbas = stripe_lbas
        self.members = [None] * members
        self.lba_bytes = lba_bytes
