"""Unit tests for the discrete-event kernel core (events, clock, run)."""

import pytest

from repro.sim import Event, Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=1)


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0

    def test_timeout_advances_clock(self, sim):
        def proc(sim):
            yield sim.timeout(250)
            return sim.now

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 250
        assert sim.now == 250

    def test_run_until_time_advances_even_with_no_events(self, sim):
        sim.run(until=1_000)
        assert sim.now == 1_000

    def test_run_until_past_raises(self, sim):
        sim.run(until=100)
        with pytest.raises(ValueError):
            sim.run(until=50)

    def test_events_process_in_time_order(self, sim):
        order = []

        def proc(sim, delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(proc(sim, 30, "c"))
        sim.process(proc(sim, 10, "a"))
        sim.process(proc(sim, 20, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_order_for_simultaneous_events(self, sim):
        order = []

        def proc(sim, tag):
            yield sim.timeout(5)
            order.append(tag)

        for tag in range(8):
            sim.process(proc(sim, tag))
        sim.run()
        assert order == list(range(8))

    def test_peek(self, sim):
        assert sim.peek() is None
        sim.timeout(40)
        # The process-boot machinery is not involved for a bare timeout.
        assert sim.peek() == 40


class TestEvent:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        results = []

        def proc(sim):
            results.append((yield ev))

        sim.process(proc(sim))
        ev.succeed("payload", delay=10)
        sim.run()
        assert results == ["payload"]
        assert ev.processed and ev.ok

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)
        with pytest.raises(RuntimeError):
            ev.fail(ValueError("x"))

    def test_fail_throws_into_process(self, sim):
        ev = sim.event()
        caught = []

        def proc(sim):
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(proc(sim))
        ev.fail(ValueError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_unhandled_failed_event_raises_from_run(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("nobody is listening"))
        with pytest.raises(RuntimeError, match="nobody is listening"):
            sim.run()

    def test_defused_failure_does_not_raise(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("handled elsewhere"))
        ev.defuse()
        sim.run()

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(RuntimeError):
            _ = ev.value

    def test_fail_requires_exception_instance(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_trigger_mirrors_outcome(self, sim):
        src = sim.event()
        dst = sim.event()
        src.succeed(42)
        sim.run()
        dst.trigger(src)
        sim.run()
        assert dst.value == 42


class TestRunUntilEvent:
    def test_returns_event_value(self, sim):
        def proc(sim):
            yield sim.timeout(100)
            return "finished"

        p = sim.process(proc(sim))
        assert sim.run(until=p) == "finished"
        assert sim.now == 100

    def test_failing_target_event_raises(self, sim):
        def proc(sim):
            yield sim.timeout(10)
            raise KeyError("inner")

        p = sim.process(proc(sim))
        with pytest.raises(KeyError):
            sim.run(until=p)

    def test_starved_target_raises(self, sim):
        ev = sim.event()  # never triggered
        sim.timeout(5)
        with pytest.raises(RuntimeError, match="ran out of events"):
            sim.run(until=ev)

    def test_negative_delay_rejected(self, sim):
        ev = sim.event()
        with pytest.raises(ValueError):
            sim._schedule(ev, delay=-1)
        with pytest.raises(ValueError):
            sim.timeout(-5)


class TestConditions:
    def test_any_of_first_wins(self, sim):
        def fast(sim):
            yield sim.timeout(10)
            return "fast"

        def slow(sim):
            yield sim.timeout(100)
            return "slow"

        results = []

        def waiter(sim):
            f, s = sim.process(fast(sim)), sim.process(slow(sim))
            got = yield f | s
            results.append((sim.now, list(got.values())))

        sim.process(waiter(sim))
        sim.run()
        assert results == [(10, ["fast"])]

    def test_all_of_waits_for_all(self, sim):
        def worker(sim, d):
            yield sim.timeout(d)
            return d

        results = []

        def waiter(sim):
            procs = [sim.process(worker(sim, d)) for d in (5, 50, 20)]
            got = yield sim.all_of(procs)
            results.append((sim.now, sorted(got.values())))

        sim.process(waiter(sim))
        sim.run()
        assert results == [(50, [5, 20, 50])]

    def test_all_of_empty_triggers_immediately(self, sim):
        cond = sim.all_of([])
        assert cond.triggered

    def test_condition_rejects_foreign_events(self, sim):
        other = Simulator(seed=2)
        with pytest.raises(ValueError):
            sim.all_of([sim.event(), other.event()])

    def test_any_of_with_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("early")
        sim.run()
        got = []

        def waiter(sim):
            value = yield sim.any_of([ev, sim.timeout(1000)])
            got.append(list(value.values()))

        sim.process(waiter(sim))
        sim.run(until=10)
        assert got == [["early"]]


class TestDeterminism:
    def test_identical_seeds_identical_traces(self):
        def run_once(seed):
            sim = Simulator(seed=seed)
            samples = []

            def proc(sim):
                for _ in range(50):
                    delay = sim.rng.uniform_ns("jitter", 50, 200)
                    yield sim.timeout(delay)
                    samples.append((sim.now, delay))

            sim.process(proc(sim))
            sim.run()
            return samples

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)
