"""The manager running on a host *other than* the device's host —
exercising the SmartIO promise that the driver "can run on any host in
the network, operating a remote device anywhere in the cluster"."""

import numpy as np
import pytest

from repro.driver import (BlockRequest, DistributedNvmeClient, NvmeManager)
from repro.scenarios.testbed import PcieTestbed
from repro.workloads import FioJob, run_fio


def make_remote_managed_cluster(manager_host=1, n_hosts=3, seed=140):
    bed = PcieTestbed(n_hosts=n_hosts, with_nvme=True, seed=seed)
    manager = NvmeManager(bed.sim, bed.smartio, bed.node(manager_host),
                          bed.nvme_device_id, bed.config)
    bed.sim.run(until=bed.sim.process(manager.start()))
    return bed, manager


class TestRemoteManager:
    def test_manager_on_remote_host_boots_controller(self):
        bed, manager = make_remote_managed_cluster()
        assert bed.nvme.regs.ready
        # Admin queues live in the *manager's* host DRAM.
        assert bed.hosts[1].memory.contains(manager.admin.sq.base_addr)
        # And the device reaches them through a window on its own NTB.
        assert bed.ntbs[0].window_count() >= 1

    def test_metadata_advertised_from_manager_host(self):
        bed, manager = make_remote_managed_cluster()
        node_id, seg_id = bed.smartio.device_metadata(bed.nvme_device_id)
        assert node_id == bed.node(1).node_id

    def test_client_on_third_host_does_io(self):
        bed, manager = make_remote_managed_cluster()
        client = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(2),
                                       bed.nvme_device_id, bed.config)
        bed.sim.run(until=bed.sim.process(client.start()))
        payload = bytes((i * 5) % 256 for i in range(4096))

        def flow(sim):
            req = yield from client.io(BlockRequest("write", lba=9,
                                                    data=payload))
            assert req.ok
            req = yield from client.io(BlockRequest("read", lba=9,
                                                    nblocks=8))
            return req

        req = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert req.ok and req.result == payload

    def test_client_on_device_host_with_remote_manager(self):
        """Management is off-host, but the data path stays local —
        I/O latency must not depend on where the manager sits."""
        bed, manager = make_remote_managed_cluster()
        client = DistributedNvmeClient(bed.sim, bed.smartio, bed.node(0),
                                       bed.nvme_device_id, bed.config)
        bed.sim.run(until=bed.sim.process(client.start()))
        result = run_fio(client, FioJob(rw="randread", total_ios=200,
                                        ramp_ios=20))
        med = result.summary("read").median
        # Same band as ours-local with a local manager (~13.4 us).
        assert 12_500 < med < 14_500

    def test_remote_admin_commands_work(self):
        bed, manager = make_remote_managed_cluster()

        def flow(sim):
            ident = yield from manager.admin.identify_controller()
            return ident

        ident = bed.sim.run(until=bed.sim.process(flow(bed.sim)))
        assert "Optane" in ident.model
