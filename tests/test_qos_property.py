"""Property-based invariants of the shared-SQ fetch arbiters.

The arbiters (docs/qos.md) are pure index bookkeeping over the shared
ring's tenant windows, so they can be driven directly with fake windows
and arbitrary hypothesis-generated backlogs — no simulator needed.  The
invariants:

* **work conservation** — whenever any window is backlogged, ``select``
  grants (never returns None) and never picks an empty window;
* **weight-proportional shares** — under sustained all-window backlog,
  DRR serves window ``i`` in proportion to its weight, within one
  quantum's tolerance (the classic DRR fairness bound);
* **bounded neighbour delay** — between two consecutive grants to any
  backlogged window, DRR grants each neighbour at most one quantum's
  worth of service;
* **fifo = global arrival order** — the fifo arbiter replays doorbell
  stamps in non-decreasing order (window index breaks ties);
* **strict priority** — the strict arbiter never serves a backlogged
  tier while a higher tier is backlogged.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import QosConfig
from repro.qos import (DrrArbiter, FifoArbiter, StrictArbiter,
                       make_arbiter)

MAX_WIN = 6


class FakeWindow:
    """Just enough of SqWindowState for an arbiter: index + emptiness."""

    def __init__(self, index, backlog=0):
        self.index = index
        self.backlog = backlog

    def is_empty(self):
        return self.backlog == 0


def make_windows(backlogs):
    return [FakeWindow(i, b) for i, b in enumerate(backlogs)]


def drain_one(arb, windows):
    """One grant cycle; returns the served window (asserting sanity)."""
    win = arb.select(windows)
    if win is None:
        assert all(w.is_empty() for w in windows), \
            "select returned None with backlogged windows"
        return None
    assert not win.is_empty(), "granted a fetch from an empty window"
    win.backlog -= 1
    arb.on_fetch(win)
    return win


backlogs_st = st.lists(st.integers(min_value=0, max_value=40),
                       min_size=2, max_size=MAX_WIN)
weights_st = st.lists(st.integers(min_value=1, max_value=8),
                      min_size=MAX_WIN, max_size=MAX_WIN)
quantum_st = st.integers(min_value=1, max_value=8)


class TestWorkConservation:
    @given(backlogs=backlogs_st, quantum=quantum_st,
           weights=weights_st)
    @settings(max_examples=200, deadline=None)
    def test_drr_drains_any_backlog(self, backlogs, quantum, weights):
        windows = make_windows(backlogs)
        arb = DrrArbiter(len(windows), quantum,
                         tuple(weights[:len(windows)]))
        grants = 0
        while any(not w.is_empty() for w in windows):
            assert drain_one(arb, windows) is not None
            grants += 1
            assert grants <= sum(backlogs), "arbiter looped past drain"
        assert grants == sum(backlogs)
        assert arb.select(windows) is None
        assert arb.grant_counts == [b for b in backlogs]

    @given(backlogs=backlogs_st, quantum=quantum_st,
           weights=weights_st)
    @settings(max_examples=100, deadline=None)
    def test_every_policy_never_grants_empty(self, backlogs, quantum,
                                             weights):
        for policy in ("fifo", "wfq", "strict"):
            qos = QosConfig(enabled=True, policy=policy, quantum=quantum,
                            weights=tuple(weights))
            windows = make_windows(list(backlogs))
            arb = make_arbiter(qos, len(windows))
            for t_ns, win in enumerate(windows):
                if win.backlog:
                    arb.on_doorbell(win, win.backlog, t_ns)
            while any(not w.is_empty() for w in windows):
                assert drain_one(arb, windows) is not None
            assert arb.select(windows) is None

    @given(events=st.lists(
        st.tuples(st.integers(min_value=0, max_value=MAX_WIN - 1),
                  st.integers(min_value=1, max_value=8),
                  st.booleans()),
        min_size=1, max_size=80))
    @settings(max_examples=100, deadline=None)
    def test_drr_interleaved_arrivals_and_grants(self, events):
        """Arbitrary doorbell/grant interleavings: the arbiter always
        serves a backlogged window and drains everything rung."""
        windows = make_windows([0] * MAX_WIN)
        arb = DrrArbiter(MAX_WIN, 4, ())
        rung = 0
        for t_ns, (idx, added, grant_now) in enumerate(events):
            windows[idx].backlog += added
            arb.on_doorbell(windows[idx], added, t_ns)
            rung += added
            if grant_now:
                assert drain_one(arb, windows) is not None
        drained = sum(arb.grant_counts)
        while any(not w.is_empty() for w in windows):
            assert drain_one(arb, windows) is not None
            drained += 1
        assert drained == rung


class TestFairness:
    @given(weights=weights_st, quantum=quantum_st,
           rounds=st.integers(min_value=3, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_drr_shares_are_weight_proportional(self, weights, quantum,
                                                rounds):
        """Under sustained backlog every window's per-weight service
        stays within one quantum of every other's."""
        nwin = MAX_WIN
        windows = make_windows([10 ** 9] * nwin)
        arb = DrrArbiter(nwin, quantum, tuple(weights))
        total = rounds * quantum * sum(weights)
        for _ in range(total):
            drain_one(arb, windows)
        per_weight = [arb.grant_counts[i] / weights[i]
                      for i in range(nwin)]
        spread = max(per_weight) - min(per_weight)
        assert spread <= quantum, (
            f"service spread {spread} exceeds one quantum ({quantum}): "
            f"{arb.grant_counts} vs weights {weights}")

    @given(weights=weights_st, quantum=quantum_st)
    @settings(max_examples=100, deadline=None)
    def test_drr_neighbour_delay_bounded_by_quantum(self, weights,
                                                    quantum):
        """Between two grants to window 0, any single neighbour gets at
        most quantum * weight grants — a burst cannot park the pointer."""
        nwin = 4
        windows = make_windows([10 ** 9] * nwin)
        arb = DrrArbiter(nwin, quantum, tuple(weights[:nwin]))
        since: list[int] = [0] * nwin
        for _ in range(quantum * sum(weights[:nwin]) * 10):
            win = drain_one(arb, windows)
            if win.index == 0:
                since = [0] * nwin
            else:
                since[win.index] += 1
                assert since[win.index] <= \
                    quantum * max(1, weights[win.index]), (
                        f"window {win.index} got {since[win.index]} "
                        f"consecutive grants while 0 was backlogged")

    def test_drr_refund_restores_credit(self):
        windows = make_windows([5, 5])
        arb = DrrArbiter(2, 1, ())
        first = arb.select(windows)
        assert first is not None
        arb.refund(first)
        # The retried fetch must be able to serve the same window
        # immediately — the lost grant's credit came back.
        again = arb.select(windows)
        assert again is first

    def test_idle_window_banks_no_credit(self):
        """A window that idles through many rotations restarts with a
        fresh quantum, not accumulated credit (classic DRR rule)."""
        windows = make_windows([10 ** 6, 0])
        arb = DrrArbiter(2, 2, ())
        for _ in range(50):
            assert drain_one(arb, windows).index == 0
        windows[1].backlog = 10 ** 6
        burst = 0
        while drain_one(arb, windows).index == 1:
            burst += 1
        assert burst <= 2 * arb.quantum


class TestFifoOrder:
    @given(events=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=1, max_value=4)),
        min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_serves_in_global_arrival_order(self, events):
        windows = make_windows([0] * 4)
        arb = FifoArbiter(4)
        expected = []
        for t_ns, (idx, added) in enumerate(events):
            windows[idx].backlog += added
            arb.on_doorbell(windows[idx], added, t_ns)
            expected.extend([(t_ns, idx)] * added)
        expected.sort()   # arrival stamp, window index breaking ties
        served = []
        while any(not w.is_empty() for w in windows):
            win = drain_one(arb, windows)
            served.append(win.index)
        assert served == [idx for _, idx in expected]


class TestStrictPriority:
    @given(backlogs=st.lists(st.integers(min_value=0, max_value=20),
                             min_size=3, max_size=3),
           weights=st.lists(st.integers(min_value=1, max_value=4),
                            min_size=3, max_size=3))
    @settings(max_examples=100, deadline=None)
    def test_higher_tier_always_first(self, backlogs, weights):
        windows = make_windows(list(backlogs))
        arb = StrictArbiter(3, tuple(weights), 1)
        while any(not w.is_empty() for w in windows):
            win = drain_one(arb, windows)
            top = max(weights[w.index] for w in windows
                      if not w.is_empty() or w is win)
            assert weights[win.index] == top, (
                f"served tier {weights[win.index]} while tier {top} "
                f"was backlogged")


class TestFactory:
    def test_policies_map_to_classes(self):
        assert isinstance(
            make_arbiter(QosConfig(enabled=True, policy="fifo"), 4),
            FifoArbiter)
        assert isinstance(
            make_arbiter(QosConfig(enabled=True, policy="wfq"), 4),
            DrrArbiter)
        assert isinstance(
            make_arbiter(QosConfig(enabled=True, policy="strict"), 4),
            StrictArbiter)

    def test_bad_policy_rejected_by_config(self):
        with pytest.raises(ValueError):
            QosConfig(policy="edf")
        with pytest.raises(ValueError):
            QosConfig(quantum=0)
        with pytest.raises(ValueError):
            QosConfig(throttle_window=-1)

    def test_weight_lookup_falls_back_to_default(self):
        qos = QosConfig(weights=(3, 2), default_weight=5)
        assert qos.weight(0) == 3
        assert qos.weight(1) == 2
        assert qos.weight(2) == 5
