"""Tests for the timeline analysis module."""

import pytest

from repro.analysis import events_from_trace, render_timeline
from repro.sim.trace import TraceRecord


def rec(time, message, **payload):
    return TraceRecord(time, "nvme", message, payload)


class TestEventsFromTrace:
    def test_projection_and_ordering(self):
        records = [
            rec(300, "fetched", qid=1, opcode=2, cid=7),
            rec(100, "doorbell", qid=1, cq=False, value=1),
            rec(900, "completed", qid=1, cid=7, status=0),
            TraceRecord(50, "pcie", "write-delivered",
                        {"addr": 1, "final": 2, "size": 64,
                         "crossings": 1}),
        ]
        events = events_from_trace(records)
        assert [e.time_ns for e in events] == [50, 100, 300, 900]
        assert events[0].lane == "fabric"
        assert "64B" in events[0].label
        assert "cid=7" in events[2].label

    def test_qid_filter(self):
        records = [rec(1, "fetched", qid=1, opcode=2, cid=1),
                   rec(2, "fetched", qid=2, opcode=2, cid=2)]
        events = events_from_trace(records, qid=2)
        assert len(events) == 1
        assert "cid=2" in events[0].label

    def test_unknown_messages_skipped(self):
        records = [rec(1, "mystery", foo=1)]
        assert events_from_trace(records) == []

    def test_missing_payload_fields_degrade_gracefully(self):
        records = [rec(5, "doorbell")]   # no value/cq fields
        events = events_from_trace(records)
        assert events[0].label == "doorbell"


class TestRenderTimeline:
    def test_empty(self):
        assert render_timeline([]) == "(no events)"

    def test_relative_times_and_lanes(self):
        events = events_from_trace([
            rec(1_000, "doorbell", qid=1, cq=False, value=3),
            rec(2_500, "completed", qid=1, cid=3, status=0),
        ])
        art = render_timeline(events, origin_ns=1_000)
        assert "+    0.000us" in art
        assert "+    1.500us" in art
        assert "controller" in art

    def test_truncation(self):
        events = events_from_trace(
            [rec(i, "doorbell", qid=1, cq=False, value=i)
             for i in range(100)])
        art = render_timeline(events, max_events=10)
        assert "90 more events" in art
