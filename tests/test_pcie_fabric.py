"""Integration tests for the PCIe fabric: routing, NTB windows, posted
ordering, and contention."""

import pytest

from repro.config import PcieConfig
from repro.pcie import (AddressError, Bar, Cluster, Fabric, NtbError,
                        NtbFunction, PCIeFunction, TopologyError)
from repro.sim import Simulator
from repro.units import MiB


class ScratchFunction(PCIeFunction):
    """A device with a 4 KiB register BAR backed by plain bytes."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.add_bar(0, 4096)
        self.backing = bytearray(4096)
        self.write_log = []

    def mmio_read(self, bar, offset, length):
        return bytes(self.backing[offset: offset + length])

    def mmio_write(self, bar, offset, data):
        self.backing[offset: offset + len(data)] = data
        self.write_log.append((self.sim.now, offset, bytes(data)))


def build_two_host_cluster(seed=21):
    """Fig. 9b-style layout: devicehost has an NVMe-like endpoint; both
    hosts have NTB adapter chips cabled to a cluster switch."""
    sim = Simulator(seed=seed)
    cfg = PcieConfig()
    cluster = Cluster(sim, cfg)

    devhost = cluster.add_host("devhost", dram_size=64 * MiB)
    client = cluster.add_host("client", dram_size=64 * MiB)

    # device endpoint in devhost
    dev_node = cluster.add_endpoint("devhost.dev", host=devhost)
    cluster.connect(devhost.rc, dev_node, bandwidth=3.2)

    # NTB adapters (switch chips) + cluster switch
    adapter_a = cluster.add_switch("devhost.ntb-adapter", host=devhost)
    adapter_b = cluster.add_switch("client.ntb-adapter", host=client)
    xswitch = cluster.add_switch("cluster-switch")
    cluster.connect(devhost.rc, adapter_a, bandwidth=7.0)
    cluster.connect(client.rc, adapter_b, bandwidth=7.0)
    cluster.connect(adapter_a, xswitch, bandwidth=7.0)
    cluster.connect(adapter_b, xswitch, bandwidth=7.0)

    fabric = Fabric(sim, cluster, cfg)

    scratch = ScratchFunction(sim, "scratch")
    scratch.install(devhost, dev_node, fabric)

    ntb_a = NtbFunction(sim, "ntb-a", aperture=16 * MiB)
    ntb_a.install(devhost, adapter_a, fabric)
    ntb_b = NtbFunction(sim, "ntb-b", aperture=16 * MiB)
    ntb_b.install(client, adapter_b, fabric)

    return sim, cluster, fabric, devhost, client, scratch, ntb_a, ntb_b


@pytest.fixture()
def env():
    return build_two_host_cluster()


class TestLocalTransactions:
    def test_cpu_reads_local_dram(self, env):
        sim, cluster, fabric, devhost, *_ = env
        addr = devhost.alloc_dma(4096)
        devhost.memory.write(addr, b"\x5a" * 64)

        def proc(sim):
            data = yield from fabric.read(devhost.rc, devhost, addr, 64)
            return (sim.now, data)

        p = sim.process(proc(sim))
        sim.run()
        elapsed, data = p.value
        assert data == b"\x5a" * 64
        assert elapsed >= 90  # at least the DRAM service time

    def test_cpu_mmio_write_reaches_device(self, env):
        sim, cluster, fabric, devhost, client, scratch, *_ = env
        bar = scratch.bars[0]
        fabric.post_write(devhost.rc, devhost, bar.base + 0x10, b"\x01\x02")
        sim.run()
        assert scratch.backing[0x10:0x12] == b"\x01\x02"
        (when, offset, data), = scratch.write_log
        # one RC traversal + device write service + serialization
        assert 150 <= when <= 400
        assert offset == 0x10

    def test_cpu_mmio_read_round_trip(self, env):
        sim, cluster, fabric, devhost, client, scratch, *_ = env
        scratch.backing[0:4] = b"\xaa\xbb\xcc\xdd"
        bar = scratch.bars[0]

        def proc(sim):
            data = yield from fabric.read(devhost.rc, devhost, bar.base, 4)
            return (sim.now, data)

        p = sim.process(proc(sim))
        sim.run()
        elapsed, data = p.value
        assert data == b"\xaa\xbb\xcc\xdd"
        # round trip: 2 RC traversals + device read service
        assert elapsed >= 2 * 150 + 120

    def test_unmapped_address_raises(self, env):
        sim, cluster, fabric, devhost, *_ = env

        def proc(sim):
            yield from fabric.read(devhost.rc, devhost, 0xDEAD_0000_0000, 4)

        p = sim.process(proc(sim))
        with pytest.raises(AddressError):
            sim.run()

    def test_device_dma_to_host_dram(self, env):
        sim, cluster, fabric, devhost, client, scratch, *_ = env
        addr = devhost.alloc_dma(4096)

        def proc(sim):
            yield from scratch.dma_write(addr, b"device-data")
            data = yield from scratch.dma_read(addr, 11)
            return data

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == b"device-data"


class TestNtbWindows:
    def test_window_write_lands_in_remote_dram(self, env):
        sim, cluster, fabric, devhost, client, scratch, ntb_a, ntb_b = env
        # client maps a window to devhost DRAM through its adapter NTB
        remote = devhost.alloc_dma(8192)
        local_addr = ntb_b.map_window(devhost, remote, 8192, label="seg")

        def proc(sim):
            yield from fabric.write(client.rc, client, local_addr + 0x20,
                                    b"over-the-ntb")

        sim.process(proc(sim))
        sim.run()
        assert devhost.memory.read(remote + 0x20, 12) == b"over-the-ntb"

    def test_remote_write_slower_than_local(self, env):
        sim, cluster, fabric, devhost, client, scratch, ntb_a, ntb_b = env
        remote = devhost.alloc_dma(4096)
        window = ntb_b.map_window(devhost, remote, 4096)
        local = client.alloc_dma(4096)

        def timed_write(sim, host, addr, results, tag):
            start = sim.now
            yield from fabric.write(host.rc, host, addr, b"x" * 64)
            results[tag] = sim.now - start

        results = {}
        sim.process(timed_write(sim, client, local, results, "local"))
        sim.run()
        sim.process(timed_write(sim, client, window, results, "remote"))
        sim.run()
        # remote crosses 3 switch chips (>=300ns) + translation + remote RC
        assert results["remote"] >= results["local"] + 300

    def test_remote_read_round_trip_counts_chips_twice(self, env):
        sim, cluster, fabric, devhost, client, scratch, ntb_a, ntb_b = env
        remote = devhost.alloc_dma(4096)
        devhost.memory.write(remote, b"R" * 512)
        window = ntb_b.map_window(devhost, remote, 4096)
        local = client.alloc_dma(4096)
        client.memory.write(local, b"L" * 512)

        def timed_read(sim, addr, results, tag):
            start = sim.now
            data = yield from fabric.read(client.rc, client, addr, 512)
            results[tag] = (sim.now - start, data)

        results = {}
        sim.process(timed_read(sim, local, results, "local"))
        sim.run()
        sim.process(timed_read(sim, window, results, "remote"))
        sim.run()
        t_local, d_local = results["local"]
        t_remote, d_remote = results["remote"]
        assert d_remote == b"R" * 512
        assert d_local == b"L" * 512
        # 3 chips each way at >=100ns -> at least 600ns extra
        assert t_remote >= t_local + 600

    def test_window_to_remote_device_bar(self, env):
        """Mapping the *device BAR* through the NTB (paper: clients map
        doorbell registers of the remote NVMe)."""
        sim, cluster, fabric, devhost, client, scratch, ntb_a, ntb_b = env
        bar = scratch.bars[0]
        window = ntb_b.map_window(devhost, bar.base, 4096, label="dev-bar")

        def proc(sim):
            yield from fabric.write(client.rc, client, window + 0x40,
                                    b"\x99")

        sim.process(proc(sim))
        sim.run()
        assert scratch.backing[0x40] == 0x99

    def test_access_outside_window_raises(self, env):
        sim, cluster, fabric, devhost, client, scratch, ntb_a, ntb_b = env
        remote = devhost.alloc_dma(4096)
        window = ntb_b.map_window(devhost, remote, 4096)
        bar_base = ntb_b.bars[0].base
        # aperture is mapped, but only [window, +4096) has a LUT entry
        unmapped = bar_base + 8 * MiB

        def proc(sim):
            yield from fabric.write(client.rc, client, unmapped, b"x")

        sim.process(proc(sim))
        with pytest.raises(NtbError):
            sim.run()

    def test_unmap_window(self, env):
        sim, cluster, fabric, devhost, client, scratch, ntb_a, ntb_b = env
        remote = devhost.alloc_dma(4096)
        window = ntb_b.map_window(devhost, remote, 4096)
        assert ntb_b.window_count() == 1
        ntb_b.unmap_window(window)
        assert ntb_b.window_count() == 0
        with pytest.raises(NtbError):
            ntb_b.unmap_window(window)

    def test_window_to_own_host_rejected(self, env):
        sim, cluster, fabric, devhost, client, scratch, ntb_a, ntb_b = env
        with pytest.raises(NtbError):
            ntb_b.map_window(client, client.memory.base, 4096)


class TestPostedOrdering:
    def test_sqe_before_doorbell_invariant(self, env):
        """Two posted writes from the same initiator to the same host must
        arrive in submission order, despite per-chip latency jitter."""
        sim, cluster, fabric, devhost, client, scratch, ntb_a, ntb_b = env
        remote = devhost.alloc_dma(4096)
        window = ntb_b.map_window(devhost, remote, 4096)
        bar_window = ntb_b.map_window(devhost, scratch.bars[0].base, 4096)
        arrivals = []

        orig_write = devhost.memory.write

        def spy(addr, data):
            arrivals.append(("sqe", sim.now))
            orig_write(addr, data)

        devhost.memory.write = spy
        orig_mmio = scratch.mmio_write

        def spy_mmio(bar, offset, data):
            arrivals.append(("doorbell", sim.now))
            orig_mmio(bar, offset, data)

        scratch.mmio_write = spy_mmio

        def proc(sim):
            for _ in range(50):
                fabric.post_write(client.rc, client, window, b"\x11" * 64)
                fabric.post_write(client.rc, client, bar_window, b"\x01")
                yield sim.timeout(100)

        sim.process(proc(sim))
        sim.run()
        assert len(arrivals) == 100
        for i in range(0, 100, 2):
            assert arrivals[i][0] == "sqe"
            assert arrivals[i + 1][0] == "doorbell"
            assert arrivals[i][1] <= arrivals[i + 1][1]


class TestContention:
    def test_link_serialises_concurrent_bulk_transfers(self, env):
        sim, cluster, fabric, devhost, client, scratch, ntb_a, ntb_b = env
        remote = devhost.alloc_dma(2 * 64 * 1024)
        window = ntb_b.map_window(devhost, remote, 2 * 64 * 1024)
        done = {}

        def writer(sim, tag, offset):
            start = sim.now
            yield from fabric.write(client.rc, client, window + offset,
                                    b"z" * 64 * 1024)
            done[tag] = sim.now - start

        sim.process(writer(sim, "a", 0))
        sim.process(writer(sim, "b", 64 * 1024))
        sim.run()
        # 64KiB at 7 B/ns ~ 9.4us serialization; the second transfer must
        # queue behind the first on the shared links.
        assert done["b"] >= done["a"] + 8_000

    def test_sequential_writes_do_not_queue(self, env):
        sim, cluster, fabric, devhost, client, scratch, ntb_a, ntb_b = env
        remote = devhost.alloc_dma(64 * 1024)
        window = ntb_b.map_window(devhost, remote, 64 * 1024)
        durations = []

        def proc(sim):
            for _ in range(2):
                start = sim.now
                yield from fabric.write(client.rc, client, window,
                                        b"z" * 4096)
                durations.append(sim.now - start)

        sim.process(proc(sim))
        sim.run()
        assert abs(durations[0] - durations[1]) < 200  # only chip jitter


class TestTopologyValidation:
    def test_duplicate_host_rejected(self, env):
        sim, cluster, *_ = env
        with pytest.raises(TopologyError):
            cluster.add_host("devhost")

    def test_duplicate_connection_rejected(self, env):
        sim, cluster, fabric, devhost, client, *_ = env
        a = cluster.nodes["devhost.ntb-adapter"]
        with pytest.raises(TopologyError):
            cluster.connect(devhost.rc, a)

    def test_no_path_raises(self, env):
        sim, cluster, *_ = env
        isolated = cluster.add_endpoint("isolated")
        with pytest.raises(TopologyError):
            cluster.path(cluster.hosts["client"].rc, isolated)

    def test_path_is_memoised_and_symmetric(self, env):
        sim, cluster, fabric, devhost, client, *_ = env
        p1 = cluster.path(client.rc, devhost.rc)
        p2 = cluster.path(devhost.rc, client.rc)
        assert p1 == tuple(reversed(p2))
        assert cluster.path(client.rc, devhost.rc) is p1  # cached

    def test_install_twice_rejected(self, env):
        sim, cluster, fabric, devhost, client, scratch, *_ = env
        with pytest.raises(RuntimeError):
            scratch.install(devhost, scratch.node, fabric)
