"""Tests for scenario builders, analysis tables and the headline
Fig. 10 shape (the paper's acceptance criteria)."""

import numpy as np
import pytest

from repro.analysis import Fig10Report, format_table, render_boxplots
from repro.scenarios import (FIG10_SCENARIOS, build_fig10_scenario,
                             local_linux, multihost, nvmeof_remote,
                             ours_local, ours_remote)
from repro.sim import BoxplotStats
from repro.workloads import FioJob, run_fio, run_fio_many


class TestBuilders:
    def test_all_fig10_scenarios_build(self):
        for name in FIG10_SCENARIOS:
            scenario = build_fig10_scenario(name, seed=1)
            assert scenario.label == name
            assert scenario.device.capacity_lbas > 0

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            build_fig10_scenario("bogus")

    def test_multihost_counts(self):
        scenario = multihost(3, seed=2)
        assert len(scenario.clients) == 3
        assert scenario.testbed.nvme.io_queue_count == 3

    def test_multihost_too_many(self):
        # With sharing refused, the paper's hard 31-client limit holds.
        with pytest.raises(ValueError):
            multihost(32, sharing="never")
        # With the default sharing policy the limit is the shared-QP
        # capacity instead.
        from repro.config import SimulationConfig

        cap = SimulationConfig().sharing.capacity(31)
        with pytest.raises(ValueError):
            multihost(cap + 1)

    def test_multihost_including_device_host(self):
        scenario = multihost(2, seed=3, include_device_host=True)
        assert scenario.clients[0].node.host is scenario.testbed.hosts[0]


class TestAnalysis:
    def _stats(self, name, values):
        return BoxplotStats.from_values(np.array(values), name=name)

    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        assert "T" in out and "333" in out
        assert out.count("|") >= 3

    def test_render_boxplots(self):
        stats = [self._stats("one", [1000, 2000, 3000]),
                 self._stats("two", [2000, 4000, 9000])]
        art = render_boxplots(stats, width=60)
        assert "one" in art and "two" in art
        assert "#" in art and "|" in art
        assert "(us)" in art

    def test_render_empty_rejected(self):
        with pytest.raises(ValueError):
            render_boxplots([])

    def _fake_report(self, nvmeof_min=19600, ours_local_min=13000,
                     ours_remote_min=14100, stock_min=11900):
        def mk(name, minimum):
            vals = np.linspace(minimum, minimum + 800, 50)
            return BoxplotStats.from_values(vals.astype(int), name=name)

        reads = {"local-linux": mk("local-linux", stock_min),
                 "nvmeof-remote": mk("nvmeof-remote", nvmeof_min),
                 "ours-local": mk("ours-local", ours_local_min),
                 "ours-remote": mk("ours-remote", ours_remote_min)}
        writes = {"local-linux": mk("local-linux", stock_min + 1500),
                  "nvmeof-remote": mk("nvmeof-remote", nvmeof_min + 1400),
                  "ours-local": mk("ours-local", ours_local_min + 1300),
                  "ours-remote": mk("ours-remote",
                                    ours_remote_min + 2200)}
        return Fig10Report(reads, writes)

    def test_fig10_report_deltas_and_shape(self):
        report = self._fake_report()
        deltas = report.deltas_us()
        assert deltas["nvmeof-read-delta"] == pytest.approx(7.7)
        assert deltas["ours-read-delta"] == pytest.approx(1.1)
        assert deltas["ours-write-delta"] == pytest.approx(2.0)
        assert report.shape_ok()
        assert all(report.check_claims().values())

    def test_fig10_report_detects_broken_shape(self):
        report = self._fake_report(nvmeof_min=12500)  # too fast
        assert not report.shape_ok()

    def test_fig10_tables_render(self):
        report = self._fake_report()
        assert "scenario" in report.to_table()
        assert "paper (us)" in report.delta_table()


@pytest.mark.slow
class TestHeadlineShape:
    """End-to-end acceptance: run all four scenarios and check the
    paper's qualitative claims (smaller sample count than the benchmark
    harness, so this stays test-suite friendly)."""

    def test_fig10_shape_holds(self):
        n = 250
        reads, writes = {}, {}
        for name in FIG10_SCENARIOS:
            scenario = build_fig10_scenario(name, seed=101)
            r = run_fio(scenario.device,
                        FioJob(name="r", rw="randread", total_ios=n))
            scenario2 = build_fig10_scenario(name, seed=102)
            w = run_fio(scenario2.device,
                        FioJob(name="w", rw="randwrite", total_ios=n))
            reads[name] = BoxplotStats.from_values(
                r.read_latencies.values(), name=name)
            writes[name] = BoxplotStats.from_values(
                w.write_latencies.values(), name=name)
        report = Fig10Report(reads, writes)
        deltas = report.deltas_us()
        assert report.shape_ok(), f"shape violated: {deltas}"
        checks = report.check_claims()
        assert all(checks.values()), (deltas, checks)
