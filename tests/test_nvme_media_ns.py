"""Unit tests for media timing models and the namespace store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MediaConfig
from repro.nvme import NandMedia, Namespace, NamespaceError, OptaneMedia
from repro.sim import Simulator


class TestOptaneMedia:
    def _run_accesses(self, kind, n=200, nbytes=4096):
        sim = Simulator(seed=4)
        media = OptaneMedia(sim, MediaConfig(), name="m")
        durations = []

        def proc(sim):
            for _ in range(n):
                start = sim.now
                yield from media.access(kind, nbytes)
                durations.append(sim.now - start)

        sim.process(proc(sim))
        sim.run()
        return np.array(durations)

    def test_read_latency_consistent(self):
        lat = self._run_accesses("read")
        assert 6_400 < np.median(lat) < 7_400
        # Optane consistency: tight distribution
        assert lat.max() <= 9_000
        assert lat.std() / lat.mean() < 0.1

    def test_write_latency(self):
        lat = self._run_accesses("write")
        assert 7_200 < np.median(lat) < 8_200
        assert lat.max() <= 10_500

    def test_large_access_pays_per_byte(self):
        small = self._run_accesses("read", n=50, nbytes=4096)
        big = self._run_accesses("read", n=50, nbytes=128 * 1024)
        # 124 KiB extra at 2.4 B/ns ~ 52 us
        assert np.median(big) > np.median(small) + 40_000

    def test_channels_bound_parallelism(self):
        sim = Simulator(seed=4)
        media = OptaneMedia(sim, MediaConfig(channels=2), name="m")
        finish = []

        def proc(sim, tag):
            yield from media.access("read", 4096)
            finish.append((tag, sim.now))

        for tag in range(4):
            sim.process(proc(sim, tag))
        sim.run()
        times = sorted(t for _, t in finish)
        # third and fourth accesses must wait for a free channel
        assert times[2] >= times[0] + 6_400
        assert times[3] >= times[1] + 6_400

    def test_flush_fast(self):
        lat = self._run_accesses("flush", n=10)
        assert lat.max() < 2_000

    def test_invalid_kind(self):
        sim = Simulator(seed=4)
        media = OptaneMedia(sim, MediaConfig())

        def proc(sim):
            yield from media.access("erase", 4096)

        p = sim.process(proc(sim))
        with pytest.raises(ValueError):
            sim.run()

    def test_counters(self):
        sim = Simulator(seed=4)
        media = OptaneMedia(sim, MediaConfig())

        def proc(sim):
            yield from media.access("read", 4096)
            yield from media.access("write", 4096)

        sim.process(proc(sim))
        sim.run()
        assert media.reads == 1 and media.writes == 1


class TestNandMedia:
    def test_asymmetric_and_slower_than_optane(self):
        sim = Simulator(seed=6)
        nand = NandMedia(sim)
        reads, writes = [], []

        def proc(sim):
            for _ in range(50):
                start = sim.now
                yield from nand.access("read", 4096)
                reads.append(sim.now - start)
            for _ in range(50):
                start = sim.now
                yield from nand.access("write", 4096)
                writes.append(sim.now - start)

        sim.process(proc(sim))
        sim.run()
        assert np.median(reads) > 30_000          # much slower than Optane
        assert np.median(writes) > 4 * np.median(reads)  # asymmetry


class TestNamespace:
    def test_roundtrip(self):
        ns = Namespace(1, capacity_lbas=1000, lba_bytes=512)
        payload = bytes(range(256)) * 4   # 1024 bytes = 2 LBAs
        ns.write_blocks(10, payload)
        assert ns.read_blocks(10, 2) == payload

    def test_unwritten_reads_zero(self):
        ns = Namespace(1, capacity_lbas=1000)
        assert ns.read_blocks(0, 4) == bytes(4 * 512)

    def test_partial_overlap(self):
        ns = Namespace(1, capacity_lbas=1000)
        ns.write_blocks(0, b"\xaa" * 512)
        ns.write_blocks(2, b"\xbb" * 512)
        data = ns.read_blocks(0, 3)
        assert data[:512] == b"\xaa" * 512
        assert data[512:1024] == bytes(512)
        assert data[1024:] == b"\xbb" * 512

    def test_range_validation(self):
        ns = Namespace(1, capacity_lbas=100)
        with pytest.raises(NamespaceError):
            ns.read_blocks(99, 2)
        with pytest.raises(NamespaceError):
            ns.read_blocks(0, 0)
        with pytest.raises(NamespaceError):
            ns.write_blocks(100, b"\x00" * 512)
        with pytest.raises(NamespaceError):
            ns.write_blocks(0, b"\x00" * 100)   # not LBA multiple

    def test_sparse_storage(self):
        ns = Namespace(1, capacity_lbas=1 << 30)   # 512 GiB logical
        ns.write_blocks(1 << 20, b"\x01" * 512)
        assert ns.written_bytes() <= 2 * 4096

    def test_identify(self):
        ns = Namespace(1, capacity_lbas=1000, lba_bytes=512)
        ident = ns.identify()
        assert ident.nsze == 1000
        assert ident.lba_bytes == 512

    def test_constructor_validation(self):
        with pytest.raises(NamespaceError):
            Namespace(0, 100)
        with pytest.raises(NamespaceError):
            Namespace(1, 100, lba_bytes=500)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_write_read_property(self, data):
        ns = Namespace(1, capacity_lbas=256, lba_bytes=512)
        shadow = bytearray(256 * 512)
        for _ in range(data.draw(st.integers(1, 8))):
            slba = data.draw(st.integers(0, 250))
            nblocks = data.draw(st.integers(1, min(6, 256 - slba)))
            payload = data.draw(st.binary(min_size=nblocks * 512,
                                          max_size=nblocks * 512))
            ns.write_blocks(slba, payload)
            shadow[slba * 512:(slba + nblocks) * 512] = payload
        assert ns.read_blocks(0, 256) == bytes(shadow)
