"""Perf-PR referee tests: the route cache, the pooled sleeps and the
integer-delay contract must never change a modeled result.

The route cache in :class:`repro.pcie.Fabric` memoises ``resolve()``;
these tests pin its invalidation contract (address-map version bumps,
NTB LUT version bumps, live link state) and prove byte-identical
telemetry with the cache on versus ``REPRO_NO_ROUTE_CACHE=1``.
"""

import pytest

from repro.pcie import NtbLinkDown
from repro.sim import Simulator
from repro.sim.events import PooledTimeout, Timeout

from .test_pcie_fabric import build_two_host_cluster


# --- integer-delay contract (Timeout used to truncate silently) ----------

class TestIntegralDelays:
    def test_integral_float_delay_is_accepted(self):
        sim = Simulator(seed=0)
        ev = Timeout(sim, 5.0)
        assert ev.delay == 5
        sim.run()
        assert sim.now == 5

    def test_fractional_delay_raises_instead_of_truncating(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError, match="non-integral delay"):
            Timeout(sim, 5.5)
        with pytest.raises(ValueError, match="non-integral delay"):
            sim.timeout(2.5)
        with pytest.raises(ValueError, match="non-integral delay"):
            sim.sleep(2.5)

    def test_fractional_succeed_delay_raises(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError, match="non-integral delay"):
            sim.event().succeed(delay=0.5)

    def test_negative_delay_still_raises(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError, match="negative"):
            sim.timeout(-1)


# --- pooled sleeps -------------------------------------------------------

class TestPooledSleep:
    def test_sleep_times_match_timeout(self):
        def run(factory_name):
            sim = Simulator(seed=3)
            marks = []

            def proc(sim):
                factory = getattr(sim, factory_name)
                for delay in (5, 0, 17, 123, 1):
                    yield factory(delay)
                    marks.append(sim.now)

            sim.process(proc(sim))
            sim.run()
            return marks, sim.events_processed

        assert run("sleep") == run("timeout")

    def test_sleep_events_are_recycled(self):
        sim = Simulator(seed=3)
        seen = set()

        def proc(sim):
            for _ in range(64):
                ev = sim.sleep(10)
                seen.add(id(ev))
                yield ev

        sim.process(proc(sim))
        sim.run()
        # After the first sleep is processed, every later one reuses it.
        assert len(seen) < 64
        assert sim._timeout_pool
        assert all(type(ev) is PooledTimeout for ev in sim._timeout_pool)


# --- route-cache invalidation -------------------------------------------

def _write_once(sim, fabric, host, addr, payload):
    def proc(sim):
        yield from fabric.write(host.rc, host, addr, payload)
    sim.process(proc(sim))
    sim.run()


class TestRouteCacheInvalidation:
    def test_cache_hits_replay_ntb_counters(self):
        sim, cluster, fabric, devhost, client, *_, ntb_b = \
            build_two_host_cluster()
        remote = devhost.alloc_dma(4096)
        window = ntb_b.map_window(devhost, remote, 4096)
        _write_once(sim, fabric, client, window, b"a" * 64)
        first = (ntb_b.translations, ntb_b.bytes_forwarded)
        _write_once(sim, fabric, client, window, b"b" * 64)
        # The second resolve is a cache hit; the observable NTB counters
        # must advance exactly as the uncached walk would have.
        assert ntb_b.translations == 2 * first[0]
        assert ntb_b.bytes_forwarded == 2 * first[1]

    def test_link_down_reaches_cached_routes(self):
        sim, cluster, fabric, devhost, client, *_, ntb_b = \
            build_two_host_cluster()
        remote = devhost.alloc_dma(4096)
        window = ntb_b.map_window(devhost, remote, 4096)
        _write_once(sim, fabric, client, window, b"x" * 32)  # warm cache
        ntb_b.set_link_state(False)
        with pytest.raises(NtbLinkDown):
            fabric.resolve(client, window, 32)
        ntb_b.set_link_state(True)
        before = devhost.memory.read(remote, 32)
        _write_once(sim, fabric, client, window, b"y" * 32)
        assert devhost.memory.read(remote, 32) == b"y" * 32 != before

    def test_window_remap_invalidates_cached_route(self):
        sim, cluster, fabric, devhost, client, *_, ntb_b = \
            build_two_host_cluster()
        remote_a = devhost.alloc_dma(4096)
        remote_b = devhost.alloc_dma(4096)
        window = ntb_b.map_window(devhost, remote_a, 4096)
        _write_once(sim, fabric, client, window, b"1" * 16)
        assert devhost.memory.read(remote_a, 16) == b"1" * 16
        # Remap the same local window to a different remote page: the
        # LUT version bump must defeat the cached resolution.
        ntb_b.unmap_window(window)
        window2 = ntb_b.map_window(devhost, remote_b, 4096)
        assert window2 == window  # same local address, new target
        _write_once(sim, fabric, client, window, b"2" * 16)
        assert devhost.memory.read(remote_b, 16) == b"2" * 16
        assert devhost.memory.read(remote_a, 16) == b"1" * 16

    def test_address_map_change_invalidates_cached_route(self):
        sim, cluster, fabric, devhost, client, *_ = \
            build_two_host_cluster()
        local = client.alloc_dma(4096)
        res1 = fabric.resolve(client, local, 64)
        version = client.addr_map.version
        # Any map mutation bumps the version and must defeat cached hits.
        scratch = client.addr_map.add(0xdead_0000, 4096, client.memory,
                                      label="scratch")
        assert client.addr_map.version > version
        res2 = fabric.resolve(client, local, 64)
        assert res2.addr == res1.addr and res2.host is res1.host
        client.addr_map.remove(scratch)
        res3 = fabric.resolve(client, local, 64)
        assert res3.addr == res1.addr


# --- byte-identical telemetry with the cache disabled --------------------

class TestNoRouteCacheEscapeHatch:
    @pytest.mark.parametrize("scenario", ["ours-remote", "chaos"])
    def test_exports_identical_with_and_without_cache(self, scenario,
                                                      monkeypatch):
        from repro.telemetry.runner import run_scenario

        def exports():
            run = run_scenario(scenario, ios=60, seed=13)
            return run.perfetto_json(), run.prometheus_text()

        cached = exports()
        monkeypatch.setenv("REPRO_NO_ROUTE_CACHE", "1")
        uncached = exports()
        assert cached == uncached

    def test_env_var_disables_the_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_ROUTE_CACHE", "1")
        sim, cluster, fabric, *_ = build_two_host_cluster()
        assert fabric._route_cache is None
        monkeypatch.delenv("REPRO_NO_ROUTE_CACHE")
        sim, cluster, fabric, *_ = build_two_host_cluster()
        assert fabric._route_cache == {}
