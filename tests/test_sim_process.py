"""Unit tests for process semantics (spawning, returns, interrupts)."""

import pytest

from repro.sim import Interrupt, Simulator


@pytest.fixture()
def sim():
    return Simulator(seed=3)


class TestProcessBasics:
    def test_return_value_is_event_value(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            return {"answer": 42}

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == {"answer": 42}

    def test_process_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_raises_inside_process(self, sim):
        seen = []

        def proc(sim):
            try:
                yield "not an event"
            except RuntimeError as exc:
                seen.append("caught")
                raise

        p = sim.process(proc(sim))
        with pytest.raises(RuntimeError):
            sim.run()
        assert seen == ["caught"]

    def test_process_waits_on_other_process(self, sim):
        def child(sim):
            yield sim.timeout(30)
            return "child-done"

        def parent(sim):
            result = yield sim.process(child(sim))
            return ("parent-saw", result, sim.now)

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == ("parent-saw", "child-done", 30)

    def test_exception_propagates_to_waiter(self, sim):
        def child(sim):
            yield sim.timeout(5)
            raise OSError("device gone")

        def parent(sim):
            try:
                yield sim.process(child(sim))
            except OSError as exc:
                return f"handled: {exc}"

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == "handled: device gone"

    def test_spawn_order_preserved_at_same_instant(self, sim):
        order = []

        def proc(sim, tag):
            order.append(tag)
            yield sim.timeout(0)
            order.append(tag + 10)

        sim.process(proc(sim, 0))
        sim.process(proc(sim, 1))
        sim.run()
        assert order == [0, 1, 10, 11]

    def test_is_alive(self, sim):
        def proc(sim):
            yield sim.timeout(10)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_waiting_on_already_finished_process(self, sim):
        def quick(sim):
            yield sim.timeout(1)
            return "early"

        p = sim.process(quick(sim))
        sim.run()

        def late(sim):
            value = yield p
            return value

        q = sim.process(late(sim))
        sim.run()
        assert q.value == "early"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(1_000_000)
            except Interrupt as intr:
                log.append((sim.now, intr.cause))

        def interrupter(sim, victim):
            yield sim.timeout(100)
            victim.interrupt("wake-up")

        victim = sim.process(sleeper(sim))
        sim.process(interrupter(sim, victim))
        sim.run()
        assert log == [(100, "wake-up")]

    def test_interrupting_finished_process_raises(self, sim):
        def quick(sim):
            yield sim.timeout(1)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_interrupted_process_can_continue(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(500)
            except Interrupt:
                pass
            yield sim.timeout(50)
            return sim.now

        def interrupter(sim, victim):
            yield sim.timeout(10)
            victim.interrupt()

        victim = sim.process(sleeper(sim))
        sim.process(interrupter(sim, victim))
        sim.run()
        assert victim.value == 60
