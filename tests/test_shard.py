"""Sharded event loop: equivalence, determinism and contract tests.

The tentpole claim under test: for one seed, a scenario produces
*bit-identical* results whether it runs as a single event loop
(``shards=1``), as K replicas multiplexed in one process (*virtual*
sharding), or as K forked worker processes.  Compared per run:

* per-client fio accounting (completed, errors, bytes, exact latency
  sums) — the simulated performance results;
* CRC32 digests of every namespace's extent map — end-to-end data
  integrity;
* for fixed-deadline runs, the merged Prometheus rendering, byte for
  byte — the telemetry merge (goals-mode final clocks legitimately
  differ between shard counts, so only fio/checksums compare there).

Virtual sharding exists precisely for these tests: it exercises the
whole window/channel machinery (freeze, lookahead barriers, ordered
envelope channels, metric merge) without fork overhead, so the suite
stays fast while covering the same code the multiprocess mode runs.
"""

from __future__ import annotations

import pytest

from repro.scenarios.sharded import (build_chaos, build_cluster,
                                     build_fig10, build_multihost,
                                     merge_program_results)
from repro.sim import ShardError, merge_disjoint, run_sharded

# (builder factory, mode, deadline, shard counts worth testing)
# cluster uses 3 shards: with 2 or 4, placement happens to put every
# volume in the same shard as its device and no envelope ever crosses
# a boundary — 3 forces real cross-shard traffic.
CASES = {
    "fig10": (lambda: build_fig10(total_ios=80), "goals", None, (2,)),
    "multihost": (lambda: build_multihost(ios_per_client=40),
                  "goals", None, (2, 4)),
    "chaos": (lambda: build_chaos(ios_per_client=30),
              "deadline", 4_000_000, (2, 4)),
    "cluster": (lambda: build_cluster(ios_per_client=30),
                "goals", None, (3,)),
}

PARAMS = [(name, k) for name, case in CASES.items() for k in case[3]]

_baseline_cache: dict[str, dict] = {}


def _baseline(name: str) -> dict:
    if name not in _baseline_cache:
        factory, mode, deadline, _counts = CASES[name]
        run = run_sharded(factory(), shards=1, mode=mode,
                          deadline=deadline)
        _baseline_cache[name] = merge_program_results(run.results)
    return _baseline_cache[name]


def _assert_equivalent(name: str, merged: dict, mode: str) -> None:
    base = _baseline(name)
    assert merged["fio"] == base["fio"]
    assert merged["checksums"] == base["checksums"]
    assert any(merged["checksums"].values()), \
        "digest trivially zero — workload never wrote an extent"
    if mode == "deadline":
        assert merged["prometheus"] == base["prometheus"]
        assert merged["sim_now"] == base["sim_now"]


@pytest.mark.parametrize("name,shards", PARAMS)
def test_virtual_sharding_matches_single_loop(name, shards):
    factory, mode, deadline, _counts = CASES[name]
    run = run_sharded(factory(), shards=shards, mode=mode,
                      deadline=deadline)
    assert run.shards == shards and not run.parallel
    assert run.windows > 0
    _assert_equivalent(name, merge_program_results(run.results), mode)


@pytest.mark.parametrize("name,shards", [("fig10", 2), ("chaos", 2)])
def test_multiprocess_sharding_matches_single_loop(name, shards):
    factory, mode, deadline, _counts = CASES[name]
    run = run_sharded(factory(), shards=shards, parallel=True,
                      mode=mode, deadline=deadline)
    assert run.parallel
    _assert_equivalent(name, merge_program_results(run.results), mode)


def test_cross_shard_traffic_is_actually_exercised():
    # A partitioning where all traffic stays shard-local would make
    # the equivalence tests vacuous; pin that the chosen shard counts
    # push real envelopes through the ordered channels.
    factory, mode, deadline, counts = CASES["multihost"]
    run = run_sharded(factory(), shards=counts[0], mode=mode,
                      deadline=deadline)
    assert run.messages > 0
    factory, mode, deadline, counts = CASES["cluster"]
    run = run_sharded(factory(), shards=counts[0], mode=mode,
                      deadline=deadline)
    assert run.messages > 0


def test_no_sharding_escape_hatch(monkeypatch):
    monkeypatch.setenv("REPRO_NO_SHARDING", "1")
    factory, mode, deadline, _counts = CASES["fig10"]
    run = run_sharded(factory(), shards=4, parallel=True, mode=mode,
                      deadline=deadline)
    assert run.shards == 1 and not run.parallel and run.windows == 0
    _assert_equivalent("fig10", merge_program_results(run.results), mode)


def test_replica_divergence_is_detected():
    inner = CASES["fig10"][0]()
    calls = {"n": 0}

    def flaky():
        prog = inner()
        calls["n"] += 1
        if calls["n"] == 2:
            prog.domains = tuple(reversed(prog.domains))
        return prog

    with pytest.raises(ShardError, match="diverg"):
        run_sharded(flaky, shards=2)


def test_lookahead_violation_is_loud():
    # A send whose effective time lands inside the lookahead window
    # would be a message the barrier already advanced past — the
    # boundary must refuse it rather than deliver it late.
    prog = CASES["fig10"][0]()()
    boundary = prog.fabric.boundary
    now = prog.sim.now
    payload = (None, "host1.ntb", None, 0, 0)
    with pytest.raises(ShardError, match="lookahead"):
        boundary.enqueue("host0",
                         (now + 1, now, 0, 0, payload), now)


def test_sanitizer_refused_up_front():
    with pytest.raises(ShardError, match="ShareSan"):
        build_fig10(sanitizer=True)
    with pytest.raises(ShardError, match="ShareSan"):
        build_multihost(sanitizer=True)
    with pytest.raises(ShardError, match="ShareSan"):
        build_chaos(sanitizer=True)
    with pytest.raises(ShardError, match="ShareSan"):
        build_cluster(sanitizer=True)


def test_perfetto_export_refused_when_sharded():
    factory, mode, deadline, _counts = CASES["fig10"]
    run = run_sharded(factory(), shards=2, mode=mode, deadline=deadline)
    merged = merge_program_results(run.results)
    with pytest.raises(ShardError, match="shards > 1"):
        merged["perfetto_json"]()


def test_merge_disjoint_rejects_overlap():
    assert merge_disjoint([{"a": 1}, {"b": 2}]) == {"a": 1, "b": 2}
    with pytest.raises(ShardError):
        merge_disjoint([{"a": 1}, {"a": 2}])
