"""Tests for the RDMA substrate: QPs, SEND/RDMA_WRITE/RDMA_READ."""

import pytest

from repro.rdma import (CompletionQueue, ProtectionDomain, QueuePair,
                        RdmaError, RecvWR, SendWR, WrOpcode, WcStatus)
from repro.scenarios.testbed import RdmaTestbed


@pytest.fixture()
def bed():
    return RdmaTestbed(seed=71)


def make_qp_pair(bed):
    pd_t = ProtectionDomain(bed.target_host)
    pd_i = ProtectionDomain(bed.initiator_host)
    qp_t = QueuePair(bed.target_nic, pd_t,
                     CompletionQueue(bed.sim, "t-send"),
                     CompletionQueue(bed.sim, "t-recv"), name="t")
    qp_i = QueuePair(bed.initiator_nic, pd_i,
                     CompletionQueue(bed.sim, "i-send"),
                     CompletionQueue(bed.sim, "i-recv"), name="i")
    qp_i.connect(qp_t)
    return pd_t, pd_i, qp_t, qp_i


class TestSend:
    def test_send_delivers_to_posted_recv(self, bed):
        pd_t, pd_i, qp_t, qp_i = make_qp_pair(bed)
        src = bed.initiator_host.alloc_dma(4096)
        dst = bed.target_host.alloc_dma(4096)
        pd_i.register(src, 4096)
        pd_t.register(dst, 4096)
        bed.initiator_host.memory.write(src, b"capsule-data")
        qp_t.post_recv(RecvWR(wr_id=1, addr=dst, length=4096))
        qp_i.post_send(SendWR(wr_id=2, opcode=WrOpcode.SEND,
                              local_addr=src, length=12))
        bed.sim.run(until=bed.sim.now + 1_000_000)
        assert bed.target_host.memory.read(dst, 12) == b"capsule-data"
        recv_wcs = qp_t.recv_cq.poll()
        assert len(recv_wcs) == 1
        assert recv_wcs[0].byte_len == 12 and recv_wcs[0].is_recv
        send_wcs = qp_i.send_cq.poll()
        assert send_wcs[0].status is WcStatus.SUCCESS

    def test_inline_send_skips_fetch(self, bed):
        pd_t, pd_i, qp_t, qp_i = make_qp_pair(bed)
        dst = bed.target_host.alloc_dma(4096)
        qp_t.post_recv(RecvWR(wr_id=1, addr=dst, length=4096))
        qp_i.post_send(SendWR(wr_id=2, opcode=WrOpcode.SEND,
                              inline_data=b"tiny", length=4))
        bed.sim.run(until=bed.sim.now + 1_000_000)
        assert bed.target_host.memory.read(dst, 4) == b"tiny"

    def test_send_without_recv_fails(self, bed):
        pd_t, pd_i, qp_t, qp_i = make_qp_pair(bed)
        qp_i.post_send(SendWR(wr_id=1, opcode=WrOpcode.SEND,
                              inline_data=b"x", length=1))
        bed.sim.run(until=bed.sim.now + 1_000_000)
        wcs = qp_i.send_cq.poll()
        assert wcs[0].status is WcStatus.LOCAL_ERROR

    def test_unconnected_qp_rejected(self, bed):
        pd = ProtectionDomain(bed.initiator_host)
        qp = QueuePair(bed.initiator_nic, pd,
                       CompletionQueue(bed.sim, "s"),
                       CompletionQueue(bed.sim, "r"))
        with pytest.raises(RdmaError):
            qp.post_send(SendWR(wr_id=1, opcode=WrOpcode.SEND,
                                inline_data=b"x", length=1))


class TestOneSided:
    def test_rdma_write(self, bed):
        pd_t, pd_i, qp_t, qp_i = make_qp_pair(bed)
        src = bed.initiator_host.alloc_dma(8192)
        dst = bed.target_host.alloc_dma(8192)
        pd_i.register(src, 8192)
        mr = pd_t.register(dst, 8192)
        payload = bytes(range(256)) * 32
        bed.initiator_host.memory.write(src, payload)
        qp_i.post_send(SendWR(wr_id=5, opcode=WrOpcode.RDMA_WRITE,
                              local_addr=src, length=8192,
                              remote_addr=dst, rkey=mr.rkey))
        bed.sim.run(until=bed.sim.now + 1_000_000)
        assert bed.target_host.memory.read(dst, 8192) == payload
        # one-sided: no completion at the target
        assert len(qp_t.recv_cq.poll()) == 0

    def test_rdma_read(self, bed):
        pd_t, pd_i, qp_t, qp_i = make_qp_pair(bed)
        remote = bed.target_host.alloc_dma(4096)
        local = bed.initiator_host.alloc_dma(4096)
        mr = pd_t.register(remote, 4096)
        pd_i.register(local, 4096)
        bed.target_host.memory.write(remote, b"pull-me" * 8)
        qp_i.post_send(SendWR(wr_id=6, opcode=WrOpcode.RDMA_READ,
                              local_addr=local, length=56,
                              remote_addr=remote, rkey=mr.rkey))
        bed.sim.run(until=bed.sim.now + 1_000_000)
        assert bed.initiator_host.memory.read(local, 56) == b"pull-me" * 8

    def test_bad_rkey_fails(self, bed):
        pd_t, pd_i, qp_t, qp_i = make_qp_pair(bed)
        src = bed.initiator_host.alloc_dma(4096)
        pd_i.register(src, 4096)
        qp_i.post_send(SendWR(wr_id=7, opcode=WrOpcode.RDMA_WRITE,
                              local_addr=src, length=16,
                              remote_addr=0x2000_0000, rkey=0x9999))
        bed.sim.run(until=bed.sim.now + 1_000_000)
        wcs = qp_i.send_cq.poll()
        assert wcs[0].status is WcStatus.LOCAL_ERROR

    def test_mr_bounds_enforced(self, bed):
        pd = ProtectionDomain(bed.target_host)
        addr = bed.target_host.alloc_dma(4096)
        mr = pd.register(addr, 4096)
        with pytest.raises(RdmaError):
            mr.check(addr + 4000, 200)
        with pytest.raises(RdmaError):
            pd.register(0x1, 10)   # outside DRAM
        with pytest.raises(RdmaError):
            pd.lookup(0xdead)


class TestLatency:
    def test_send_one_way_in_microsecond_band(self, bed):
        """One-way small SEND: NIC tx + wire + NIC rx + DMA placement —
        a bit over a microsecond for ConnectX-5-class hardware."""
        pd_t, pd_i, qp_t, qp_i = make_qp_pair(bed)
        dst = bed.target_host.alloc_dma(4096)
        qp_t.post_recv(RecvWR(wr_id=1, addr=dst, length=4096))
        arrivals = []

        def waiter(sim):
            yield qp_t.recv_cq.signal.wait()
            arrivals.append(sim.now)

        bed.sim.process(waiter(bed.sim))
        start = bed.sim.now
        qp_i.post_send(SendWR(wr_id=2, opcode=WrOpcode.SEND,
                              inline_data=b"x" * 72, length=72))
        bed.sim.run(until=bed.sim.now + 1_000_000)
        assert arrivals
        one_way = arrivals[0] - start
        assert 1_000 < one_way < 2_500

    def test_bandwidth_serialisation(self, bed):
        """128 KiB RDMA_WRITE: wire serialization ~11.4 us at 11.5 GB/s
        dominates the transfer."""
        pd_t, pd_i, qp_t, qp_i = make_qp_pair(bed)
        src = bed.initiator_host.alloc_dma(128 * 1024)
        dst = bed.target_host.alloc_dma(128 * 1024)
        pd_i.register(src, 128 * 1024)
        mr = pd_t.register(dst, 128 * 1024)
        start = bed.sim.now
        qp_i.post_send(SendWR(wr_id=9, opcode=WrOpcode.RDMA_WRITE,
                              local_addr=src, length=128 * 1024,
                              remote_addr=dst, rkey=mr.rkey))
        done = []

        def waiter(sim):
            yield qp_i.send_cq.signal.wait()
            done.append(sim.now)

        bed.sim.process(waiter(bed.sim))
        bed.sim.run(until=bed.sim.now + 10_000_000)
        assert done
        elapsed = done[0] - start
        assert elapsed > 11_000   # at least the wire serialization
        assert elapsed < 60_000
