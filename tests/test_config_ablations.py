"""Config-level ablations: the model responds to its knobs in the
physically expected direction (sensitivity testing of the calibration)."""

import dataclasses

import numpy as np
import pytest

from repro.config import (MediaConfig, NvmeConfig, PcieConfig,
                          SimulationConfig, replace)
from repro.nvme.media import NAND_CONFIG
from repro.scenarios import local_linux, ours_local, ours_remote
from repro.workloads import FioJob, run_fio


def median_read(scenario, ios=250):
    result = run_fio(scenario.device,
                     FioJob(rw="randread", total_ios=ios, ramp_ios=20))
    return float(result.summary("read").median)


def with_media(**kwargs) -> SimulationConfig:
    base = SimulationConfig()
    media = dataclasses.replace(base.nvme.media, **kwargs)
    return replace(base, nvme=dataclasses.replace(base.nvme, media=media))


class TestSwitchLatencySensitivity:
    def test_slower_chips_hurt_remote_not_local(self):
        base = SimulationConfig()
        slow = replace(base, pcie=dataclasses.replace(
            base.pcie, switch_latency_min_ns=400,
            switch_latency_max_ns=450))

        local_base = median_read(ours_local(config=base, seed=200))
        local_slow = median_read(ours_local(config=slow, seed=200))
        remote_base = median_read(ours_remote(config=base, seed=201))
        remote_slow = median_read(ours_remote(config=slow, seed=201))

        # Local path has no cluster switch chips: nearly unchanged.
        assert abs(local_slow - local_base) < 300
        # Remote path crosses 3 chips several times per I/O: clearly up.
        assert remote_slow > remote_base + 1_200


class TestMediaSensitivity:
    def test_nand_media_dominates_transport_choice(self):
        """On TLC flash (~70 us reads) the NTB-vs-RDMA difference
        becomes irrelevant — context for why the paper pairs fast media
        with a fast fabric."""
        base = SimulationConfig()
        nand = replace(base, nvme=dataclasses.replace(
            base.nvme, media=NAND_CONFIG))
        optane_remote = median_read(ours_remote(config=base, seed=202))
        nand_remote = median_read(ours_remote(config=nand, seed=202))
        assert nand_remote > 4 * optane_remote

    def test_sigma_widens_distribution(self):
        tight = with_media(sigma=0.01)
        loose = with_media(sigma=0.2, read_cap_ns=30_000)

        def spread(config, seed):
            result = run_fio(local_linux(config=config, seed=seed).device,
                             FioJob(rw="randread", total_ios=300))
            s = result.summary("read")
            return (s.p99 - s.minimum)

        assert spread(loose, 203) > 2 * spread(tight, 203)


class TestSoftwarePathSensitivity:
    def test_dist_submit_cost_shifts_ours_only(self):
        base = SimulationConfig()
        heavy = replace(base, host=dataclasses.replace(
            base.host, dist_submit_ns=5_000))
        stock_base = median_read(local_linux(config=base, seed=204))
        stock_heavy = median_read(local_linux(config=heavy, seed=204))
        ours_base = median_read(ours_local(config=base, seed=205))
        ours_heavy = median_read(ours_local(config=heavy, seed=205))
        assert abs(stock_heavy - stock_base) < 200
        assert ours_heavy > ours_base + 3_000

    def test_poll_interval_adds_expected_latency(self):
        base = SimulationConfig()
        coarse = replace(base, host=dataclasses.replace(
            base.host, poll_interval_ns=4_000))
        fine = median_read(ours_local(config=base, seed=206), ios=400)
        slow = median_read(ours_local(config=coarse, seed=206), ios=400)
        # expected added median ~ half the interval
        assert 1_000 < slow - fine < 3_500

    def test_interrupt_latency_hits_stock_driver(self):
        base = SimulationConfig()
        slow_irq = replace(base, host=dataclasses.replace(
            base.host, interrupt_latency_ns=6_000))
        fast = median_read(local_linux(config=base, seed=207))
        slow = median_read(local_linux(config=slow_irq, seed=207))
        assert 4_000 < slow - fast < 6_000


class TestBandwidthSensitivity:
    def test_narrow_ntb_link_throttles_large_remote_reads(self):
        base = SimulationConfig()
        narrow = replace(base, cluster=dataclasses.replace(
            base.cluster, ntb_link_bandwidth=0.5))   # 0.5 GB/s

        def bw(config, seed):
            scenario = ours_remote(config=config, seed=seed,
                                   queue_depth=8)
            result = run_fio(scenario.device,
                             FioJob(rw="randread", bs=128 * 1024,
                                    iodepth=8, total_ios=80))
            return result.bandwidth_bytes_per_s

        assert bw(base, 208) > 3 * bw(narrow, 208)
        assert bw(narrow, 208) < 0.55e9
