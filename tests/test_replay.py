"""Tests for block-trace record and replay."""

import pytest

from repro.scenarios import local_linux, ours_remote, nvmeof_remote
from repro.workloads import (BlockTrace, FioJob, RecordingDevice,
                             TraceEntry, replay_trace, run_fio)


class TestBlockTrace:
    def test_ordering_enforced(self):
        trace = BlockTrace()
        trace.append(TraceEntry(100, "read", 0, 8))
        with pytest.raises(ValueError):
            trace.append(TraceEntry(50, "read", 8, 8))

    def test_scaled(self):
        trace = BlockTrace([TraceEntry(1000, "read", 0, 8),
                            TraceEntry(2000, "write", 8, 8)])
        fast = trace.scaled(0.5)
        assert [e.arrival_ns for e in fast.entries] == [500, 1000]
        assert trace.duration_ns == 2000
        with pytest.raises(ValueError):
            trace.scaled(0)


class TestRecording:
    def test_recording_passes_through_and_captures(self):
        scenario = local_linux(seed=400)
        recorder = RecordingDevice(scenario.device)
        result = run_fio(recorder, FioJob(rw="randrw", total_ios=80))
        assert result.ios == 80
        assert len(recorder.trace) == 80
        # entries ordered and within the run duration
        arrivals = [e.arrival_ns for e in recorder.trace.entries]
        assert arrivals == sorted(arrivals)
        assert all(e.op in ("read", "write")
                   for e in recorder.trace.entries)

    def test_recorded_data_path_intact(self):
        scenario = local_linux(seed=401)
        recorder = RecordingDevice(scenario.device)
        from repro.driver import BlockRequest

        def flow(sim):
            req = yield recorder.submit(BlockRequest("write", lba=3,
                                                     data=b"r" * 512))
            assert req.ok
            req = yield recorder.submit(BlockRequest("read", lba=3,
                                                     nblocks=1))
            return req

        req = scenario.sim.run(
            until=scenario.sim.process(flow(scenario.sim)))
        assert req.result == b"r" * 512


class TestReplay:
    def _record(self, seed=402, ios=60):
        scenario = local_linux(seed=seed)
        recorder = RecordingDevice(scenario.device)
        run_fio(recorder, FioJob(rw="randread", total_ios=ios,
                                 region_lbas=1 << 20))
        return recorder.trace

    def test_replay_completes_all(self):
        trace = self._record()
        scenario = ours_remote(seed=403)
        result = replay_trace(scenario.device, trace)
        assert result.issued == 60
        assert result.completed == 60
        assert result.errors == 0
        assert len(result.latencies) == 60

    def test_open_loop_exposes_slower_transport(self):
        """Under the identical offered load, the slower transport shows
        higher per-I/O latency — the closed-loop flattery is gone."""
        trace = self._record(ios=80)
        fast = replay_trace(ours_remote(seed=404).device, trace)
        slow = replay_trace(nvmeof_remote(seed=404).device, trace)
        assert slow.latencies.summary().median > \
            fast.latencies.summary().median + 4_000

    def test_compressed_trace_builds_queueing_delay(self):
        """Compressing arrivals far below the device's service rate
        forces queueing, visible as tag-wait time inside the latency."""
        trace = self._record(ios=80)
        relaxed = replay_trace(ours_remote(seed=405).device, trace)
        crushed = replay_trace(ours_remote(seed=406,
                                           queue_depth=4).device,
                               trace.scaled(0.002))
        assert crushed.latencies.summary().median > \
            2 * relaxed.latencies.summary().median
        assert crushed.elapsed_ns < relaxed.elapsed_ns
