"""Tests for block-trace record and replay."""

import pytest

from repro.scenarios import cluster, local_linux, nvmeof_remote, \
    ours_remote
from repro.workloads import (BlockTrace, FioJob, RecordingDevice,
                             TraceEntry, TraceError, replay_trace,
                             run_fio)


class TestBlockTrace:
    def test_ordering_enforced(self):
        trace = BlockTrace()
        trace.append(TraceEntry(100, "read", 0, 8))
        with pytest.raises(ValueError):
            trace.append(TraceEntry(50, "read", 8, 8))

    def test_scaled(self):
        trace = BlockTrace([TraceEntry(1000, "read", 0, 8),
                            TraceEntry(2000, "write", 8, 8)])
        fast = trace.scaled(0.5)
        assert [e.arrival_ns for e in fast.entries] == [500, 1000]
        assert trace.duration_ns == 2000
        with pytest.raises(ValueError):
            trace.scaled(0)


class TestSerialization:
    """Trace <-> portable form: exact round-trip, strict parsing."""

    TRACE = BlockTrace([TraceEntry(0, "read", 40, 8),
                        TraceEntry(1500, "write", 0, 16),
                        TraceEntry(1500, "read", 1 << 30, 1)])

    def test_jsonl_round_trip_is_exact(self):
        text = self.TRACE.to_jsonl()
        assert text.count("\n") == 3
        back = BlockTrace.from_jsonl(text)
        assert back.entries == self.TRACE.entries
        # Canonical serialization: one stable byte form per trace.
        assert back.to_jsonl() == text

    def test_dict_round_trip_is_exact(self):
        back = BlockTrace.from_dicts(self.TRACE.as_dicts())
        assert back.entries == self.TRACE.entries

    def test_blank_lines_tolerated(self):
        text = "\n" + self.TRACE.to_jsonl().replace("\n", "\n\n")
        assert BlockTrace.from_jsonl(text).entries == self.TRACE.entries

    @pytest.mark.parametrize("record, fragment", [
        ({"arrival_ns": 0, "op": "trim", "lba": 0, "nblocks": 8},
         "unknown op"),
        ({"arrival_ns": 0, "op": "read", "lba": -1, "nblocks": 8},
         "lba"),
        ({"arrival_ns": 0, "op": "read", "lba": 0, "nblocks": 0},
         "nblocks"),
        ({"arrival_ns": 0.5, "op": "read", "lba": 0, "nblocks": 8},
         "integer"),
        ({"arrival_ns": 0, "op": "read", "lba": True, "nblocks": 8},
         "integer"),
        ({"arrival_ns": 0, "op": "read", "lba": 0}, "missing"),
        ({"arrival_ns": 0, "op": "read", "lba": 0, "nblocks": 8,
          "extra": 1}, "unknown field"),
    ])
    def test_malformed_record_rejected_with_its_number(self, record,
                                                       fragment):
        good = {"arrival_ns": 0, "op": "read", "lba": 0, "nblocks": 8}
        with pytest.raises(TraceError, match="record 2") as err:
            BlockTrace.from_dicts([good, record])
        assert fragment in str(err.value)

    def test_out_of_order_arrivals_rejected(self):
        records = [{"arrival_ns": 100, "op": "read", "lba": 0,
                    "nblocks": 8},
                   {"arrival_ns": 50, "op": "read", "lba": 8,
                    "nblocks": 8}]
        with pytest.raises(TraceError, match="record 2"):
            BlockTrace.from_dicts(records)

    def test_invalid_json_line_numbered(self):
        text = self.TRACE.to_jsonl() + "{not json\n"
        with pytest.raises(TraceError, match="line 4"):
            BlockTrace.from_jsonl(text)

    def test_non_object_line_rejected(self):
        with pytest.raises(TraceError, match="record 1"):
            BlockTrace.from_jsonl("[1, 2, 3]\n")


class TestRecording:
    def test_recording_passes_through_and_captures(self):
        scenario = local_linux(seed=400)
        recorder = RecordingDevice(scenario.device)
        result = run_fio(recorder, FioJob(rw="randrw", total_ios=80))
        assert result.ios == 80
        assert len(recorder.trace) == 80
        # entries ordered and within the run duration
        arrivals = [e.arrival_ns for e in recorder.trace.entries]
        assert arrivals == sorted(arrivals)
        assert all(e.op in ("read", "write")
                   for e in recorder.trace.entries)

    def test_recorded_data_path_intact(self):
        scenario = local_linux(seed=401)
        recorder = RecordingDevice(scenario.device)
        from repro.driver import BlockRequest

        def flow(sim):
            req = yield recorder.submit(BlockRequest("write", lba=3,
                                                     data=b"r" * 512))
            assert req.ok
            req = yield recorder.submit(BlockRequest("read", lba=3,
                                                     nblocks=1))
            return req

        req = scenario.sim.run(
            until=scenario.sim.process(flow(scenario.sim)))
        assert req.result == b"r" * 512


class TestReplay:
    def _record(self, seed=402, ios=60):
        scenario = local_linux(seed=seed)
        recorder = RecordingDevice(scenario.device)
        run_fio(recorder, FioJob(rw="randread", total_ios=ios,
                                 region_lbas=1 << 20))
        return recorder.trace

    def test_replay_completes_all(self):
        trace = self._record()
        scenario = ours_remote(seed=403)
        result = replay_trace(scenario.device, trace)
        assert result.issued == 60
        assert result.completed == 60
        assert result.errors == 0
        assert len(result.latencies) == 60

    def test_open_loop_exposes_slower_transport(self):
        """Under the identical offered load, the slower transport shows
        higher per-I/O latency — the closed-loop flattery is gone."""
        trace = self._record(ios=80)
        fast = replay_trace(ours_remote(seed=404).device, trace)
        slow = replay_trace(nvmeof_remote(seed=404).device, trace)
        assert slow.latencies.summary().median > \
            fast.latencies.summary().median + 4_000

    def test_replay_onto_cluster_volume(self):
        """A recorded trace replays against a striped multi-device
        volume: same I/O stream, every request lands and completes."""
        trace = self._record(ios=60)
        scn = cluster(n_clients=1, n_devices=2, width=2, replicas=2,
                      seed=410, queue_depth=16)
        volume = scn.volumes[0]
        result = replay_trace(volume, trace)
        assert result.issued == 60
        assert result.completed == 60
        assert result.errors == 0
        # The stripe actually spread the stream over both members.
        moved = [path.bytes_moved for path in volume.paths]
        assert all(b > 0 for b in moved)

    def test_round_tripped_trace_replays_identically(self):
        """Serialization is semantically lossless: the wire-format
        round trip drives the exact same simulation."""
        trace = self._record(ios=50)
        back = BlockTrace.from_jsonl(trace.to_jsonl())
        a = replay_trace(ours_remote(seed=411).device, trace)
        b = replay_trace(ours_remote(seed=411).device, back)
        assert a.latencies.values().tolist() == \
            b.latencies.values().tolist()

    def test_compressed_trace_builds_queueing_delay(self):
        """Compressing arrivals far below the device's service rate
        forces queueing, visible as tag-wait time inside the latency."""
        trace = self._record(ios=80)
        relaxed = replay_trace(ours_remote(seed=405).device, trace)
        crushed = replay_trace(ours_remote(seed=406,
                                           queue_depth=4).device,
                               trace.scaled(0.002))
        assert crushed.latencies.summary().median > \
            2 * relaxed.latencies.summary().median
        assert crushed.elapsed_ns < relaxed.elapsed_ns


class TestRateScaledReplay:
    """``speedup`` / ``inflight_cap`` / ``open_loop`` replay modes."""

    def _record(self, seed=420, ios=60):
        scenario = local_linux(seed=seed)
        recorder = RecordingDevice(scenario.device)
        run_fio(recorder, FioJob(rw="randread", total_ios=ios,
                                 region_lbas=1 << 20))
        return recorder.trace

    def test_speedup_matches_prescaled_trace(self):
        """``speedup=2`` is exactly ``trace.scaled(0.5)`` (halving is
        float-exact, so the two schedules are identical)."""
        trace = self._record()
        a = replay_trace(ours_remote(seed=421).device, trace, speedup=2.0)
        b = replay_trace(ours_remote(seed=421).device, trace.scaled(0.5))
        assert a.latencies.values().tolist() == \
            b.latencies.values().tolist()
        assert a.elapsed_ns == b.elapsed_ns

    def test_speedup_compresses_offered_load(self):
        trace = self._record(ios=80)
        base = replay_trace(ours_remote(seed=422).device, trace)
        fast = replay_trace(ours_remote(seed=423).device, trace,
                            speedup=50.0)
        assert fast.elapsed_ns < base.elapsed_ns
        assert fast.completed == base.completed == 80
        with pytest.raises(ValueError):
            replay_trace(ours_remote(seed=424).device, trace, speedup=0)

    def test_inflight_cap_bounds_outstanding(self):
        """A cap of 1 serializes the compressed stream: every request
        waits for its predecessor, so the run takes longer than the
        uncapped replay of the same schedule."""
        trace = self._record(ios=40)
        uncapped = replay_trace(ours_remote(seed=425).device,
                                trace.scaled(0.001))
        capped = replay_trace(ours_remote(seed=426).device,
                              trace.scaled(0.001), inflight_cap=1)
        assert capped.completed == uncapped.completed == 40
        assert capped.elapsed_ns > uncapped.elapsed_ns
        with pytest.raises(ValueError):
            replay_trace(ours_remote(seed=427).device, trace,
                         inflight_cap=0)

    def test_open_loop_latency_charges_backlog(self):
        """With ``open_loop=True`` latency runs from the *scheduled*
        arrival, so cap-induced software backlog inflates the recorded
        distribution instead of hiding in a stalled issuer."""
        trace = self._record(ios=40)
        service = replay_trace(ours_remote(seed=428).device,
                               trace.scaled(0.001), inflight_cap=1)
        open_lp = replay_trace(ours_remote(seed=428).device,
                               trace.scaled(0.001), inflight_cap=1,
                               open_loop=True)
        assert open_lp.max_backlog_ns > 0
        assert open_lp.latencies.summary().median > \
            service.latencies.summary().median

    def test_constructor_bypass_rejected_at_replay(self):
        """A trace built by handing an out-of-order list straight to
        the constructor (bypassing ``append``) fails loudly at replay
        with the record number, not silently reordered."""
        trace = BlockTrace([TraceEntry(100, "read", 0, 8),
                            TraceEntry(50, "read", 8, 8)])
        with pytest.raises(TraceError, match="record 2"):
            replay_trace(local_linux(seed=429).device, trace)
        with pytest.raises(TraceError, match="record 2"):
            trace.validate_order()
