"""Telemetry: spans, metrics registry, exporters, determinism.

Covers the ISSUE 3 acceptance criteria: clean spans decompose the
end-to-end latency into the seven canonical stages *exactly*; metrics
and exporters are deterministic (two identical chaos runs serialise
byte-identically); and enabling telemetry does not perturb simulated
timing at all.
"""

from __future__ import annotations

import collections
import json

import pytest

from repro.driver import BlockRequest
from repro.scenarios import build_fig10_scenario, ours_remote
from repro.sim import Simulator, Tracer
from repro.telemetry import (BOUNDARIES, STAGES, IoSpan, MetricsError,
                             MetricsRegistry, SpanRecorder,
                             registry_to_prometheus, run_scenario,
                             spans_to_perfetto)
from repro.workloads import FioJob, run_fio


def make_clean_span(start=1000, step=100):
    span = IoSpan(0, "dev0", "read", lba=8, nbytes=4096, start_ns=start)
    ts = start
    for name in BOUNDARIES:
        ts += step
        span.mark(name, ts)
    span.end_ns = ts + step
    return span


class TestIoSpan:
    def test_clean_span_stage_sums_exactly(self):
        span = make_clean_span()
        assert span.clean
        stages = span.stage_durations()
        assert tuple(stages) == STAGES
        assert sum(stages.values()) == span.duration_ns == 700

    def test_boundaries_include_start_and_end(self):
        span = make_clean_span()
        names = [n for n, _t in span.boundaries()]
        assert names == ["start", *BOUNDARIES, "end"]

    def test_unfinished_span(self):
        span = IoSpan(0, "d", "read", 0, 4096, start_ns=5)
        assert not span.finished
        with pytest.raises(ValueError):
            span.duration_ns
        assert [n for n, _t in span.boundaries()] == ["start"]

    def test_duplicate_mark_makes_span_unclean(self):
        span = make_clean_span()
        span.mark("fetched", span.end_ns)   # retry stamped a boundary
        assert span.finished and not span.clean
        assert span.stage_durations() is None

    def test_as_dict_round_trips_marks(self):
        span = make_clean_span()
        d = span.as_dict()
        assert d["device"] == "dev0" and d["op"] == "read"
        assert d["marks"] == span.marks and d["marks"] is not span.marks


class TestSpanRecorder:
    def test_begin_finish_and_queries(self):
        rec = SpanRecorder()
        a = rec.begin("d", "read", 0, 4096, start_ns=10)
        b = rec.begin("d", "write", 8, 4096, start_ns=20)
        rec.finish(a, 50)
        assert rec.finished() == [a]
        assert rec.clean_spans() == []      # no boundary marks
        assert b.index == a.index + 1

    def test_bind_mark_unbind(self):
        rec = SpanRecorder()
        span = rec.begin("d", "read", 0, 4096, start_ns=0)
        rec.bind(qid=3, cid=7, span=span)
        assert (span.qid, span.cid) == (3, 7)
        rec.mark_cmd(3, 7, "fetched", 42)
        assert span.marks == [("fetched", 42)]
        rec.unbind(3, 7)
        rec.mark_cmd(3, 7, "media-done", 50)     # silent no-op
        rec.unbind(3, 7)                         # tolerant double-unbind
        assert span.marks == [("fetched", 42)]

    def test_mark_cmd_miss_is_silent(self):
        SpanRecorder().mark_cmd(1, 2, "fetched", 9)

    def test_clear(self):
        rec = SpanRecorder()
        span = rec.begin("d", "read", 0, 4096, start_ns=0)
        rec.bind(1, 1, span)
        rec.clear()
        assert rec.spans == []
        next_span = rec.begin("d", "read", 0, 4096, start_ns=0)
        assert next_span.index == 0


class TestMetricsRegistry:
    def test_counter_add_and_get(self):
        m = MetricsRegistry()
        m.counter_add("c_total", 2, kind="x")
        m.counter_add("c_total", 3, kind="x")
        m.counter_add("c_total", 1, kind="y")
        assert m.get("c_total", kind="x") == 5
        assert m.get("c_total", kind="y") == 1
        assert m.get("c_total", kind="z") is None
        assert m.get("absent") is None

    def test_counter_rejects_negative(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter_add("c_total", -1)

    def test_kind_conflict_rejected(self):
        m = MetricsRegistry()
        m.counter_add("x_total")
        with pytest.raises(MetricsError):
            m.gauge_set("x_total", 1)

    def test_label_order_is_canonical(self):
        m = MetricsRegistry()
        m.counter_add("c_total", 1, a="1", b="2")
        m.counter_add("c_total", 1, b="2", a="1")
        assert m.get("c_total", b="2", a="1") == 2

    def test_observe_snapshots_to_boxplot(self):
        m = MetricsRegistry()
        for v in (100, 200, 300):
            m.observe("lat_ns", v, device="d0")
        snap = m.snapshot()["lat_ns"]
        assert snap["kind"] == "summary"
        (series,) = snap["series"]
        assert series["labels"] == {"device": "d0"}
        assert series["value"].count == 3
        assert series["value"].median == 200

    def test_families_sorted(self):
        m = MetricsRegistry()
        m.gauge_set("zz", 1)
        m.gauge_set("aa", 2)
        assert [f.name for f in m.families()] == ["aa", "zz"]


class TestExporters:
    def test_perfetto_clean_span_structure(self):
        doc = json.loads(spans_to_perfetto([make_clean_span()]))
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "dev0"
        slices = [e for e in events if e["ph"] == "X"]
        outer = [e for e in slices if e["cat"] == "io"]
        stages = [e for e in slices if e["cat"] == "stage"]
        assert len(outer) == 1 and len(stages) == len(STAGES)
        assert [e["name"] for e in stages] == list(STAGES)
        assert sum(e["dur"] for e in stages) == outer[0]["dur"]

    def test_perfetto_unclean_span_uses_arrow_labels(self):
        span = make_clean_span()
        span.mark("fetched", span.end_ns)
        doc = json.loads(spans_to_perfetto([span]))
        names = [e["name"] for e in doc["traceEvents"]
                 if e.get("cat") == "stage"]
        assert names[0] == "-> sqe-issued"
        assert names[-1] == "-> end"

    def test_perfetto_skips_unfinished_spans(self):
        span = IoSpan(0, "d", "read", 0, 4096, start_ns=0)
        doc = json.loads(spans_to_perfetto([span]))
        assert doc["traceEvents"] == []

    def test_prometheus_rendering(self):
        m = MetricsRegistry()
        m.counter_add("repro_x_total", 3, help="things", kind="posted")
        m.gauge_set("repro_depth", 2.5)
        m.observe("repro_lat_ns", 1000, device="d0")
        m.observe("repro_lat_ns", 3000, device="d0")
        text = registry_to_prometheus(m)
        assert "# HELP repro_x_total things\n" in text
        assert "# TYPE repro_x_total counter\n" in text
        assert 'repro_x_total{kind="posted"} 3\n' in text
        assert "repro_depth 2.5\n" in text
        assert ('repro_lat_ns{device="d0",quantile="0.5"} 2000'
                in text)
        assert 'repro_lat_ns_sum{device="d0"} 4000\n' in text
        assert 'repro_lat_ns_count{device="d0"} 2\n' in text

    def test_prometheus_empty_summary_is_all_zero(self):
        m = MetricsRegistry()
        from repro.sim import BoxplotStats
        m.summary_set("repro_lat_ns", BoxplotStats.from_values([]))
        text = registry_to_prometheus(m)
        assert 'repro_lat_ns{quantile="0.99"} 0\n' in text
        assert "repro_lat_ns_count 0\n" in text

    def test_prometheus_label_values_are_escaped(self):
        # Satellite regression: backslash, double quote and newline in
        # label values must escape per the text exposition format.
        m = MetricsRegistry()
        m.counter_set("repro_x_total", 1, path='C:\\dev\\"nvme"\n0')
        text = registry_to_prometheus(m)
        assert ('repro_x_total{path="C:\\\\dev\\\\\\"nvme\\"\\n0"} 1'
                in text)
        assert "\n0" not in text.split("repro_x_total{")[1]

    def test_prometheus_classic_histogram_rendering(self):
        from repro.telemetry import LogHistogram
        m = MetricsRegistry()
        hist = LogHistogram()
        for v in (10, 10, 50, 1000):
            hist.record(v)
        m.histogram_set("repro_hist_ns", hist, help="latency",
                        tenant="h1")
        text = registry_to_prometheus(m)
        assert "# TYPE repro_hist_ns histogram\n" in text
        # Cumulative buckets at the occupied log-bucket upper bounds
        # (the le label renders last, like summary quantile labels).
        assert 'repro_hist_ns_bucket{tenant="h1",le="10"} 2\n' in text
        assert 'repro_hist_ns_bucket{tenant="h1",le="50"} 3\n' in text
        upper = hist.bucket_upper(hist.bucket_index(1000))
        assert (f'repro_hist_ns_bucket{{tenant="h1",le="{upper}"}} 4\n'
                in text)
        assert 'repro_hist_ns_bucket{tenant="h1",le="+Inf"} 4\n' in text
        assert 'repro_hist_ns_sum{tenant="h1"} 1070\n' in text
        assert 'repro_hist_ns_count{tenant="h1"} 4\n' in text


class TestInstrumentedScenarios:
    def test_remote_reads_decompose_exactly(self):
        scenario = ours_remote(seed=21, telemetry=True)
        tele = scenario.telemetry

        def flow(sim):
            for i in range(30):
                req = yield scenario.device.submit(
                    BlockRequest("read", lba=i * 8, nblocks=8))
                assert req.ok

        scenario.sim.run(until=scenario.sim.process(flow(scenario.sim)))
        spans = tele.spans.clean_spans()
        assert len(spans) == 30
        for span in spans:
            stages = span.stage_durations()
            assert sum(stages.values()) == span.duration_ns
            assert all(v >= 0 for v in stages.values())
            assert span.qid == scenario.device.qid

    def test_telemetry_does_not_perturb_timing(self):
        # The acceptance criterion: runs with telemetry off must be
        # bit-identical to the seed behaviour — and since spans ride on
        # existing events (no queue entries, no RNG draws), runs with
        # telemetry ON must produce identical latencies too.
        job = FioJob(name="t", rw="randread", bs=4096, iodepth=4,
                     total_ios=120)
        lats = {}
        for on in (False, True):
            scenario = build_fig10_scenario("ours-remote", seed=33,
                                            telemetry=on)
            result = run_fio(scenario.device, job)
            lats[on] = (result.read_latencies.values().tolist(),
                        scenario.sim.now)
        assert lats[False] == lats[True]

    def test_span_durations_match_recorder_exactly(self):
        scenario = build_fig10_scenario("ours-remote", seed=8,
                                        telemetry=True)
        result = run_fio(scenario.device,
                         FioJob(name="x", rw="randread", bs=4096,
                                iodepth=2, total_ios=80))
        spans = scenario.telemetry.spans.clean_spans()
        assert len(spans) == 80
        recorded = collections.Counter(
            result.read_latencies.values().tolist())
        assert recorded == collections.Counter(
            s.duration_ns for s in spans)

    def test_metrics_snapshot_contents(self):
        scenario = build_fig10_scenario("ours-remote", seed=8,
                                        telemetry=True)
        run_fio(scenario.device,
                FioJob(name="x", rw="randread", bs=4096, iodepth=1,
                       total_ios=40))
        m = scenario.telemetry.collect()
        dev = scenario.device.name
        assert m.get("repro_io_completed_total", device=dev) == 40
        assert m.get("repro_fabric_tlps_total", kind="posted") > 0
        assert m.get("repro_fabric_tlps_total", kind="nonposted") > 0
        assert m.get("repro_nvme_commands_completed_total",
                     ctrl=scenario.testbed.nvme.name) >= 40
        assert m.get("repro_nvme_sq_depth",
                     ctrl=scenario.testbed.nvme.name,
                     qid=scenario.device.qid) == 0
        # The manager served this client's create-qp RPC.
        rec = m.get("repro_manager_rpc_latency_ns", op="create-qp")
        assert rec is not None and len(rec) == 1
        ntb_name = scenario.testbed.ntbs[1].name
        assert m.get("repro_ntb_link_up", adapter=ntb_name) == 1
        assert m.get("repro_ntb_bytes_total", adapter=ntb_name) > 0


class TestChaosDeterminism:
    def test_chaos_exports_are_byte_identical(self):
        runs = [run_scenario("chaos", ios=40, seed=11, n_clients=2)
                for _ in range(2)]
        a, b = runs
        assert a.perfetto_json() == b.perfetto_json()
        assert a.prometheus_text() == b.prometheus_text()
        assert [r.ios for r in a.results] == [r.ios for r in b.results]
        # The chaos run actually exercised the faults path.
        text = a.prometheus_text()
        assert "repro_faults_injected_total" in text


class TestCollectIdempotency:
    def test_double_collect_is_idempotent(self):
        # Satellite regression: collect() must be safe to call ad hoc
        # and repeatedly — every collector uses set-style instruments
        # (counter_set/gauge_set/summary_set), never counter_add, so a
        # second scrape with no sim progress changes nothing.
        scenario = build_fig10_scenario("ours-remote", seed=8,
                                        telemetry=True)
        run_fio(scenario.device,
                FioJob(name="x", rw="randread", bs=4096, iodepth=2,
                       total_ios=60))
        tele = scenario.telemetry
        first = registry_to_prometheus(tele.collect())
        second = registry_to_prometheus(tele.collect())
        assert first == second


class TestClusterMetricsContract:
    """Exact family names and label sets for a 2-device cluster —
    exporter output is contract-tested, not just smoke-tested."""

    def _collect(self):
        from repro.scenarios import cluster
        from repro.workloads import run_fio_many
        sc = cluster(n_clients=2, n_devices=2, seed=5, telemetry=True)
        run_fio_many([(vol, FioJob(name=f"v{i}", rw="randread",
                                   bs=4096, iodepth=2, total_ios=30))
                      for i, vol in enumerate(sc.volumes)])
        return sc, sc.telemetry.collect()

    def test_volume_families_and_label_sets(self):
        sc, m = self._collect()
        snap = m.snapshot()
        volume_families = {
            "repro_cluster_failovers_total": "counter",
            "repro_cluster_path_errors_total": "counter",
            "repro_cluster_degraded_writes_total": "counter",
            "repro_cluster_paths_live": "gauge",
            "repro_cluster_paths": "gauge",
        }
        for family, kind in volume_families.items():
            assert family in snap, family
            assert snap[family]["kind"] == kind
            series = snap[family]["series"]
            # One series per volume, labelled by volume name only.
            assert [s["labels"] for s in series] == [
                {"volume": "vol0"}, {"volume": "vol1"}]
        # Healthy run: every configured path is live, none demoted.
        for sample in snap["repro_cluster_paths_live"]["series"]:
            assert sample["value"] == 1
        for sample in snap["repro_cluster_paths"]["series"]:
            assert sample["value"] == 1

    def test_manager_families_carry_device_id_labels(self):
        sc, m = self._collect()
        snap = m.snapshot()
        device_ids = sorted(str(d) for d in sc.managers)
        assert len(device_ids) == 2
        for family in ("repro_manager_rpcs_total",
                       "repro_manager_queues_in_use",
                       "repro_manager_leases_reclaimed_total",
                       "repro_manager_admission_rejections_total",
                       "repro_qp_cqes_forwarded_total",
                       "repro_qp_cqes_orphaned_total"):
            assert family in snap, family
            labels = [s["labels"] for s in snap[family]["series"]]
            # Multi-manager hubs must disambiguate by device_id.
            assert sorted(l["device_id"] for l in labels) == device_ids
            assert all(set(l) == {"device_id"} for l in labels)
        # Shared-QP gauges only exist when admission actually shared a
        # queue pair (2 tenants on 2 devices get exclusive QPs); when
        # present they must carry both qid and device_id.
        for family in ("repro_qp_tenants", "repro_qp_windows_free"):
            for sample in snap.get(family, {}).get("series", ()):
                assert set(sample["labels"]) == {"device_id", "qid"}

    def test_single_manager_hub_stays_unlabeled(self):
        # The historical contract: one manager -> no device_id label.
        tr = run_scenario("chaos", ios=20, seed=11, n_clients=2)
        snap = tr.telemetry.collect().snapshot()
        labels = [s["labels"]
                  for s in snap["repro_manager_rpcs_total"]["series"]]
        assert labels == [{}]


class TestTracerSatellite:
    def test_emit_copies_payload(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        payload = {"qid": 1}
        tracer.emit("nvme", "fetch", **payload)
        payload["qid"] = 99
        assert tracer.records[0].payload == {"qid": 1}

    def test_emit_copies_caller_dict_mutation(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        state = {"head": 0}
        tracer.emit("q", "state", **state)
        state["head"] = 7
        tracer.emit("q", "state", **state)
        assert [r.payload["head"] for r in tracer.records] == [0, 7]

    def test_as_tuple_is_stable_and_hashable(self):
        sim = Simulator(seed=1)
        tracer = Tracer(sim)
        tracer.emit("nvme", "fetch", b=2, a=1)
        rec = tracer.records[0]
        assert rec.as_tuple() == (0, "nvme", "fetch",
                                  (("a", 1), ("b", 2)))
        assert hash(rec.as_tuple())
