"""Unit tests for address maps and TLP wire-cost accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PcieConfig
from repro.pcie import (AddressError, AddressMap, completion_cost,
                        read_request_cost, write_cost)


class TestAddressMap:
    def test_add_and_lookup(self):
        m = AddressMap("t")
        m.add(0x1000, 0x100, "ram")
        m.add(0x2000, 0x100, "bar")
        assert m.lookup(0x1000).target == "ram"
        assert m.lookup(0x10FF).target == "ram"
        assert m.lookup(0x2080, 0x10).target == "bar"

    def test_unmapped_raises(self):
        m = AddressMap("t")
        m.add(0x1000, 0x100, "ram")
        with pytest.raises(AddressError):
            m.lookup(0xFFF)
        with pytest.raises(AddressError):
            m.lookup(0x1100)

    def test_straddle_raises(self):
        m = AddressMap("t")
        m.add(0x1000, 0x100, "a")
        m.add(0x1100, 0x100, "b")
        with pytest.raises(AddressError, match="straddles"):
            m.lookup(0x10F8, 0x10)

    def test_overlap_rejected(self):
        m = AddressMap("t")
        m.add(0x1000, 0x100, "a")
        with pytest.raises(AddressError):
            m.add(0x10FF, 0x10, "b")
        with pytest.raises(AddressError):
            m.add(0x0FFF, 0x10, "c")
        # adjacent is fine
        m.add(0x1100, 0x10, "d")

    def test_remove(self):
        m = AddressMap("t")
        mapping = m.add(0x1000, 0x100, "a")
        m.remove(mapping)
        with pytest.raises(AddressError):
            m.lookup(0x1000)
        with pytest.raises(AddressError):
            m.remove(mapping)

    def test_find_free_respects_existing(self):
        m = AddressMap("t")
        m.add(0x0000, 0x1000, "a")
        m.add(0x2000, 0x1000, "b")
        base = m.find_free(0x1000, start=0, limit=0x10000)
        assert base == 0x1000
        base2 = m.find_free(0x2000, start=0, limit=0x10000)
        assert base2 == 0x3000

    def test_find_free_exhausted(self):
        m = AddressMap("t")
        m.add(0x0000, 0x1000, "a")
        with pytest.raises(AddressError):
            m.find_free(0x1000, start=0, limit=0x1000)

    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(1, 16)),
                    min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_lookup_always_finds_added_nonoverlapping(self, slots):
        m = AddressMap("prop")
        placed = {}
        for slot, pages in slots:
            base = slot * 0x100000
            if any(base < b + s and b < base + pages * 0x1000
                   for b, s in placed.items()):
                continue
            try:
                m.add(base, pages * 0x1000, f"t{slot}")
            except AddressError:
                continue
            placed[base] = pages * 0x1000
        for base, size in placed.items():
            assert m.lookup(base).base == base
            assert m.lookup(base + size - 1).base == base


class TestTlpCosts:
    def setup_method(self):
        self.cfg = PcieConfig()  # MPS 256, header 26, cpl header 20

    def test_write_cost_single_packet(self):
        c = write_cost(64, self.cfg)
        assert c.packets == 1
        assert c.bytes_on_wire == 64 + 26

    def test_write_cost_chunking(self):
        c = write_cost(4096, self.cfg)
        assert c.packets == 16
        assert c.bytes_on_wire == 4096 + 16 * 26

    def test_zero_byte_write_is_header_only(self):
        c = write_cost(0, self.cfg)
        assert c.packets == 1 and c.bytes_on_wire == 26

    def test_read_request_headers_only(self):
        c = read_request_cost(4096, self.cfg)   # MRRS 512 -> 8 requests
        assert c.packets == 8
        assert c.bytes_on_wire == 8 * 26

    def test_completion_carries_data(self):
        c = completion_cost(4096, self.cfg)
        assert c.packets == 16
        assert c.bytes_on_wire == 4096 + 16 * 20

    def test_validation(self):
        with pytest.raises(ValueError):
            write_cost(-1, self.cfg)
        with pytest.raises(ValueError):
            read_request_cost(0, self.cfg)
        with pytest.raises(ValueError):
            completion_cost(0, self.cfg)

    @given(st.integers(1, 1 << 20))
    @settings(max_examples=60, deadline=None)
    def test_wire_bytes_exceed_payload(self, size):
        assert write_cost(size, self.cfg).bytes_on_wire > size
        assert completion_cost(size, self.cfg).bytes_on_wire > size
        assert read_request_cost(size, self.cfg).bytes_on_wire < size + 26 * 8192
