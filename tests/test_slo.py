"""Time-series telemetry, latency histograms, SLO burn-rate engine.

Covers the ISSUE 8 acceptance criteria: deterministic log-bucketed
histograms with bounded relative error; a sim-clock sampler that
perturbs modeled timing not at all; multi-window burn-rate alerting
whose device-kill alert fires inside the kill window; and byte-identical
exports across identical runs.
"""

from __future__ import annotations

import json

import pytest

from repro.sim import Simulator
from repro.telemetry import (HistogramError, LatencyHistograms,
                             LogHistogram, SeriesBank, SloEngine, SloSpec,
                             TelemetrySampler)
from repro.telemetry.runner import run_slo


# --- histograms ----------------------------------------------------------

class TestLogHistogram:
    def test_small_values_are_exact(self):
        h = LogHistogram()
        for v in range(128):
            assert h.bucket_index(v) == v
            assert h.bucket_upper(v) == v

    def test_bucket_upper_inverts_bucket_index(self):
        h = LogHistogram()
        for v in [128, 129, 255, 256, 1000, 4096, 10**6, 10**9, 10**12]:
            idx = h.bucket_index(v)
            upper = h.bucket_upper(idx)
            assert upper >= v
            assert h.bucket_index(upper) == idx
            # The next value after the bucket's upper bound starts a
            # new bucket.
            assert h.bucket_index(upper + 1) == idx + 1

    def test_relative_error_bound(self):
        h = LogHistogram()
        for v in [130, 999, 12_345, 7_654_321, 10**10 + 7]:
            upper = h.bucket_upper(h.bucket_index(v))
            assert (upper - v) / v <= 2 / 128

    def test_negative_value_rejected(self):
        with pytest.raises(HistogramError):
            LogHistogram().record(-1)

    def test_quantiles_match_nearest_rank_exactly(self):
        # Deterministic value set; small values are bucket-exact, so
        # quantiles must equal the true nearest-rank sample.
        values = [(i * 37) % 100 for i in range(1000)]
        h = LogHistogram()
        for v in values:
            h.record(v)
        ordered = sorted(values)
        for q in (0.5, 0.95, 0.99, 0.999, 1.0):
            rank = max(1, -(-int(q * 1_000_000) * len(ordered)
                            // 1_000_000))
            assert h.quantile(q) == ordered[rank - 1], q

    def test_quantile_empty_and_clamping(self):
        h = LogHistogram()
        assert h.quantile(0.99) == 0
        h.record(7)
        assert h.quantile(-1.0) == 7
        assert h.quantile(2.0) == 7

    def test_merge_and_diff(self):
        a, b = LogHistogram(), LogHistogram()
        for v in (5, 500, 50_000):
            a.record(v)
        for v in (5, 900):
            b.record(v)
        a.merge(b)
        assert a.count == 5 and a.total == 5 + 500 + 50_000 + 5 + 900
        snap = a.copy()
        a.record(12)
        window = a.diff(snap)
        assert window.count == 1
        assert window.quantile(1.0) == 12

    def test_diff_rejects_non_ancestor(self):
        a, b = LogHistogram(), LogHistogram()
        b.record(5)
        with pytest.raises(HistogramError):
            a.diff(b)

    def test_sub_bits_mismatch_rejected(self):
        with pytest.raises(HistogramError):
            LogHistogram(7).merge(LogHistogram(8))


class TestLatencyHistograms:
    def test_errors_burn_separately_from_latency(self):
        hists = LatencyHistograms()
        hists.record_io("h1", "read", "d0", 100)
        hists.record_io("h1", "read", "d0", 200)
        hists.record_io("h1", "read", "d0", 5, ok=False)
        key = ("h1", "read", "d0")
        assert hists.totals(key) == (2, 1)
        # The failed request's latency never lands in the histogram.
        assert hists.hist(*key).count == 2
        assert hists.errors(*key) == 1

    def test_keys_sorted_union(self):
        hists = LatencyHistograms()
        hists.record_io("b", "read", "d0", 1)
        hists.record_io("a", "write", "d1", 1, ok=False)
        assert hists.keys() == [("a", "write", "d1"), ("b", "read", "d0")]


# --- time series ---------------------------------------------------------

class TestSeriesBank:
    def test_ring_capacity_evicts_oldest(self):
        bank = SeriesBank(capacity=3)
        ts = bank.series("x", host="h")
        for i in range(5):
            ts.append(i, i * 10)
        assert ts.points() == [(2, 20), (3, 30), (4, 40)]

    def test_jsonl_is_sorted_and_deterministic(self):
        bank = SeriesBank()
        bank.series("b").append(5, 1)
        bank.series("a", z="2", y="1").append(3, 0.5)
        lines = bank.to_jsonl().splitlines()
        docs = [json.loads(line) for line in lines]
        assert [d["name"] for d in docs] == ["a", "b"]
        assert docs[0]["labels"] == {"y": "1", "z": "2"}
        assert bank.to_jsonl() == bank.to_jsonl()

    def test_get_without_create(self):
        bank = SeriesBank()
        assert bank.get("missing") is None
        bank.series("x")
        assert bank.get("x") is not None and len(bank) == 1


class TestTelemetrySampler:
    def test_ticks_at_interval_and_stops(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, interval_ns=100)
        seen = []
        sampler.add_source(lambda bank, now: seen.append(now))
        sampler.start()
        sim.run(until=sim.timeout(450))
        assert seen == [0, 100, 200, 300, 400]
        sampler.stop()                     # final sample at stop time
        assert seen[-1] == 450
        # The tick process is gone: a queue-draining run terminates.
        sim.run()
        assert seen[-1] == 450

    def test_start_is_idempotent(self):
        sim = Simulator()
        sampler = TelemetrySampler(sim, interval_ns=100)
        ticks = []
        sampler.add_source(lambda bank, now: ticks.append(now))
        sampler.start()
        sampler.start()
        sim.run(until=sim.timeout(250))
        assert ticks == [0, 100, 200]

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TelemetrySampler(Simulator(), interval_ns=0)


# --- SLO engine ----------------------------------------------------------

def _engine(**kw):
    defaults = dict(name="slo", objective_ns=100, target=0.9,
                    fast_window_ns=100, slow_window_ns=300,
                    burn_threshold=2.0)
    defaults.update(kw)
    hists = LatencyHistograms()
    return SloEngine(SloSpec(**defaults), hists), hists


class TestSloEngine:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SloSpec(target=1.0)
        with pytest.raises(ValueError):
            SloSpec(fast_window_ns=10, slow_window_ns=5)
        with pytest.raises(ValueError):
            SloSpec(objective_ns=0)

    def test_healthy_traffic_never_alerts(self):
        engine, hists = _engine()
        bank = SeriesBank()
        for tick in range(10):
            hists.record_io("h1", "read", "d0", 50)
            engine.sample(bank, tick * 100)
        assert engine.alerts == []
        assert engine.compliance("h1") == 1.0
        assert bank.get("slo_burn_fast", slo="slo",
                        tenant="h1").values()[-1] == 0.0

    def test_burn_fires_and_resolves_with_sim_timestamps(self):
        engine, hists = _engine()
        bank = SeriesBank()
        # 5 good ticks, then 5 all-error ticks, then silence.
        now = 0
        for _ in range(5):
            hists.record_io("h1", "read", "d0", 50)
            engine.sample(bank, now)
            now += 100
        for _ in range(5):
            hists.record_io("h1", "read", "d0", 50, ok=False)
            engine.sample(bank, now)
            now += 100
        assert len(engine.alerts) == 1
        alert = engine.alerts[0]
        assert alert.tenant == "h1"
        # Errors start at t=500; the slow window (300 ns) fills with
        # bad traffic within a few ticks — burn 10 >> threshold 2.
        assert 500 <= alert.fired_at_ns <= 800
        assert alert.active
        # Quiet ticks: the windows slide past the burst and the alert
        # resolves.
        for _ in range(6):
            engine.sample(bank, now)
            now += 100
        assert not alert.active
        assert alert.resolved_at_ns is not None

    def test_error_burns_budget_even_when_fast(self):
        engine, hists = _engine()
        bank = SeriesBank()
        hists.record_io("h1", "read", "d0", 1, ok=False)   # fast failure
        engine.sample(bank, 0)
        hists.record_io("h1", "read", "d0", 1, ok=False)
        engine.sample(bank, 100)
        assert engine.compliance("h1") == 0.0

    def test_slow_request_is_bad(self):
        engine, hists = _engine()
        bank = SeriesBank()
        hists.record_io("h1", "read", "d0", 99)     # within objective
        hists.record_io("h1", "read", "d0", 5000)   # blown objective
        engine.sample(bank, 0)
        assert engine.compliance("h1") == 0.5

    def test_report_round_trips_to_json(self):
        engine, hists = _engine()
        hists.record_io("h1", "read", "d0", 50)
        engine.sample(SeriesBank(), 0)
        doc = json.loads(json.dumps(engine.report()))
        assert doc["tenants"]["h1"]["met"] is True
        assert doc["spec"]["target"] == 0.9


# --- the acceptance story ------------------------------------------------

KILL_WINDOW_NS = 3_000_000     # alert must fire within 3 ms of the kill


@pytest.fixture(scope="module")
def slo_run():
    """Default (width-1) run: the kill becomes a sustained error burn."""
    return run_slo(seed=7)


@pytest.fixture(scope="module")
def slo_run_replicated():
    """Replicated run: the kill becomes a failover latency spike."""
    return run_slo(n_devices=3, width=2, replicas=2, seed=7)


def _p99_peaks(run):
    """Tenant -> peak of its windowed p99 series (max over devices)."""
    peaks = {}
    for ts in run.telemetry.sampler.bank.all_series():
        if ts.name != "latency_p99_ns":
            continue
        tenant = dict(ts.labels)["tenant"]
        peaks[tenant] = max(peaks.get(tenant, 0), max(ts.values()))
    return peaks


class TestDeviceKillAcceptance:
    def test_victims_alert_inside_kill_window(self, slo_run):
        report = slo_run.report
        assert slo_run.killed == "ctrl:nvme1"
        assert report["alerts"], "device kill fired no burn-rate alert"
        for alert in report["alerts"]:
            assert slo_run.kill_at_ns < alert["fired_at_ns"] \
                <= slo_run.kill_at_ns + KILL_WINDOW_NS

    def test_victim_and_bystander_tenant_split(self, slo_run):
        report = slo_run.report
        alerted = {a["tenant"] for a in report["alerts"]}
        assert alerted == set(slo_run.victims)
        for tenant, info in report["tenants"].items():
            if tenant in alerted:
                assert not info["met"]
                assert info["alerts"]
            else:
                assert info["met"]
                assert info["compliance"] == 1.0
                assert not info["alerts"]

    def test_replicated_victim_p99_series_spikes(self, slo_run_replicated):
        # With replicas=2 a victim's reads fail over and its writes
        # degrade: slow *successes* that blow the latency objective and
        # spike the windowed p99 series, while bystanders stay calm.
        run = slo_run_replicated
        objective = run.report["spec"]["objective_ns"]
        assert run.victims
        peaks = _p99_peaks(run)
        for tenant, peak in peaks.items():
            if tenant in run.victims:
                assert peak > objective, (tenant, peak)
            else:
                assert peak <= objective, (tenant, peak)

    def test_replicated_victims_stay_errorfree_but_degraded(
            self, slo_run_replicated):
        run = slo_run_replicated
        report = run.report
        # Failover kept every request succeeding (no NO_PATH burn)...
        for tenant, info in report["tenants"].items():
            assert info["good"] <= info["total"]
            if tenant not in run.victims:
                assert info["compliance"] == 1.0
        # ...but victim writes landed on fewer replicas than configured.
        m = run.telemetry.metrics
        degraded = sum(
            m.get("repro_cluster_degraded_writes_total", volume=v) or 0
            for v in ("vol0", "vol1", "vol2", "vol3"))
        assert degraded > 0

    def test_timeline_has_live_path_drop(self, slo_run):
        bank = slo_run.telemetry.sampler.bank
        drops = [ts for ts in bank.all_series()
                 if ts.name == "cluster_paths_live"
                 and ts.values()[0] == 1 and ts.values()[-1] == 0]
        # Width-1 volumes on the killed device lose their only path.
        assert len(drops) == 2

    def test_exports_are_byte_identical_across_runs(self, slo_run):
        again = run_slo(seed=7)
        assert slo_run.timeseries_jsonl() == again.timeseries_jsonl()
        assert slo_run.slo_report_json() == again.slo_report_json()
        assert slo_run.prometheus_text() == again.prometheus_text()
        assert slo_run.perfetto_json() == again.perfetto_json()

    def test_perfetto_export_has_counter_tracks(self, slo_run):
        doc = json.loads(slo_run.perfetto_json())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert any(n.startswith("slo_burn_fast") for n in names)
        meta = [e for e in doc["traceEvents"]
                if e["ph"] == "M" and e["pid"] == counters[0]["pid"]]
        assert meta and meta[0]["args"]["name"] == "telemetry counters"

    def test_prometheus_export_has_tenant_histograms(self, slo_run):
        text = slo_run.prometheus_text()
        assert "# TYPE repro_io_latency_hist_ns histogram" in text
        assert 'tenant="host2"' in text
        assert 'le="+Inf"' in text
        assert "repro_io_tenant_errors_total" in text


class TestZeroPerturbation:
    def test_instrumentation_leaves_model_bit_identical(self):
        # The tentpole determinism contract: the sampler adds timeout
        # events but only ever *reads* state, so enabling histograms +
        # sampler + SLO leaves every modeled result bit-identical.
        def latencies(instrument: bool):
            import repro.telemetry.runner as runner
            from repro.faults import FaultEvent, FaultPlan
            from repro.scenarios import cluster
            from repro.workloads import FioJob, fio_generator
            sc = cluster(n_clients=4, n_devices=2, width=1, replicas=1,
                         seed=7, faults=True, telemetry=True,
                         reliability=runner.SLO_RELIABILITY)
            tele = sc.telemetry
            if instrument:
                tele.enable_histograms()
                tele.enable_slo(runner.DEFAULT_SLO)
                tele.enable_sampler(interval_ns=200_000)
            sc.injector.plan = FaultPlan((FaultEvent(
                1_000_000, "ctrl_stall", sc.ctrl_points()[-1],
                duration_ns=0),))
            sc.injector.start()
            for i, vol in enumerate(sc.volumes):
                sc.sim.process(fio_generator(
                    vol, FioJob(name=f"t{i}", rw="randrw", bs=4096,
                                iodepth=4, total_ios=400,
                                seed_stream=f"slo{i}")))
            sc.sim.run(until=sc.sim.timeout(6_000_000))
            if instrument:
                tele.sampler.stop()
            return ([vol.latencies.values().tolist()
                     for vol in sc.volumes],
                    [vol.completed for vol in sc.volumes],
                    [vol.errors for vol in sc.volumes],
                    sc.sim.now)

        assert latencies(False) == latencies(True)
