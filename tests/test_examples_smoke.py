"""Smoke tests: every example must run to completion and produce its
headline output (keeps the documented entry points from rotting)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "latency: min=" in out
        assert "kIOPS" in out

    def test_queue_placement_tuning(self, capsys):
        out = run_example("queue_placement_tuning", capsys)
        assert "device-side" in out
        assert "paper default" in out

    def test_cluster_kv_store(self, capsys):
        out = run_example("cluster_kv_store", capsys)
        assert "records written by 4 hosts" in out

    def test_striped_remote_devices(self, capsys):
        out = run_example("striped_remote_devices", capsys)
        assert "striped x2" in out
        assert "verified bit-exact" in out

    def test_traced_io(self, capsys):
        out = run_example("traced_io", capsys)
        assert "SQE fetched" in out
        assert "CQE posted" in out

    @pytest.mark.slow
    def test_multi_host_sharing(self, capsys):
        out = run_example("multi_host_sharing", capsys)
        assert "cross-host reads verified" in out

    @pytest.mark.slow
    def test_latency_comparison(self, capsys):
        out = run_example("latency_comparison", capsys)
        assert "shape matches the paper: True" in out
