"""Shim for environments without the `wheel` package (offline PEP-660
builds fail); enables `pip install -e . --no-use-pep517`."""
from setuptools import setup

setup()
